// Package histogram implements the synopsis histograms from Section 2 of
// the tutorial: equi-width, the V-Optimal histogram (piecewise-constant
// approximation minimizing sum of squared error, via the classic dynamic
// program of Jagadish et al. that the survey's Guha–Koudas–Shim citation
// streams), and the end-biased histogram (exact counts above a frequency
// threshold, uniform approximation below).
package histogram

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Bucket is one histogram bucket over the value domain [Lo, Hi) with a
// representative (average) height.
type Bucket struct {
	Lo, Hi float64
	Height float64 // average of the values assigned to the bucket
	Count  int
}

// EquiWidth builds a fixed-bucket histogram over [lo, hi): the baseline
// whose SSE the V-optimal construction is compared against.
type EquiWidth struct {
	lo, hi float64
	counts []uint64
	sums   []float64
	n      uint64
}

// NewEquiWidth returns an equi-width histogram of b buckets over [lo, hi).
func NewEquiWidth(lo, hi float64, b int) (*EquiWidth, error) {
	if b <= 0 {
		return nil, core.Errf("EquiWidth", "buckets", "%d must be positive", b)
	}
	if !(lo < hi) {
		return nil, core.Errf("EquiWidth", "range", "lo %v must be < hi %v", lo, hi)
	}
	return &EquiWidth{lo: lo, hi: hi, counts: make([]uint64, b), sums: make([]float64, b)}, nil
}

// Update adds one value (clamped into the range).
func (e *EquiWidth) Update(v float64) {
	e.n++
	idx := e.BucketIndex(v)
	e.counts[idx]++
	e.sums[idx] += v
}

// BucketIndex returns the index of the bucket v falls into, clamping
// out-of-range values into the edge buckets. It does not mutate the
// histogram, so callers that keep their own (e.g. atomic) per-bucket
// counts — such as the telemetry registry's latency histograms — can
// reuse the equi-width bucket math without sharing state.
func (e *EquiWidth) BucketIndex(v float64) int {
	idx := int((v - e.lo) / (e.hi - e.lo) * float64(len(e.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.counts) {
		idx = len(e.counts) - 1
	}
	return idx
}

// BucketBounds returns the upper bound of each bucket, lo + (i+1)*width;
// the last bound equals hi. Values above hi are clamped into the final
// bucket by BucketIndex, so consumers exposing cumulative bucket counts
// (Prometheus-style le bounds) should treat the final bucket as +Inf.
func (e *EquiWidth) BucketBounds() []float64 {
	width := (e.hi - e.lo) / float64(len(e.counts))
	out := make([]float64, len(e.counts))
	for i := range out {
		out[i] = e.lo + float64(i+1)*width
	}
	return out
}

// Buckets returns the current buckets.
func (e *EquiWidth) Buckets() []Bucket {
	width := (e.hi - e.lo) / float64(len(e.counts))
	out := make([]Bucket, len(e.counts))
	for i := range e.counts {
		h := 0.0
		if e.counts[i] > 0 {
			h = e.sums[i] / float64(e.counts[i])
		}
		out[i] = Bucket{
			Lo:     e.lo + float64(i)*width,
			Hi:     e.lo + float64(i+1)*width,
			Height: h,
			Count:  int(e.counts[i]),
		}
	}
	return out
}

// Count returns the number of values added.
func (e *EquiWidth) Count() uint64 { return e.n }

// Bytes approximates the footprint.
func (e *EquiWidth) Bytes() int { return len(e.counts)*16 + 32 }

// VOptimal computes the optimal piecewise-constant approximation of a
// sequence of values with b buckets, minimizing the sum of squared errors,
// using the O(n^2 b) dynamic program. It is the offline gold standard
// synopsis; the experiments compare equi-width and end-biased against it.
func VOptimal(values []float64, b int) ([]Bucket, float64, error) {
	n := len(values)
	if b <= 0 {
		return nil, 0, core.Errf("VOptimal", "buckets", "%d must be positive", b)
	}
	if n == 0 {
		return nil, 0, nil
	}
	if b > n {
		b = n
	}
	// Prefix sums for O(1) segment SSE.
	pre := make([]float64, n+1)
	preSq := make([]float64, n+1)
	for i, v := range values {
		pre[i+1] = pre[i] + v
		preSq[i+1] = preSq[i] + v*v
	}
	sse := func(i, j int) float64 { // segment [i, j)
		cnt := float64(j - i)
		sum := pre[j] - pre[i]
		sq := preSq[j] - preSq[i]
		s := sq - sum*sum/cnt
		if s < 0 {
			s = 0
		}
		return s
	}
	const inf = math.MaxFloat64
	// dp[k][j]: min SSE of the first j values with k buckets.
	dp := make([][]float64, b+1)
	cut := make([][]int, b+1)
	for k := range dp {
		dp[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for j := range dp[k] {
			dp[k][j] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= b; k++ {
		for j := k; j <= n; j++ {
			for i := k - 1; i < j; i++ {
				if dp[k-1][i] == inf {
					continue
				}
				cand := dp[k-1][i] + sse(i, j)
				if cand < dp[k][j] {
					dp[k][j] = cand
					cut[k][j] = i
				}
			}
		}
	}
	// Reconstruct bucket boundaries.
	bounds := make([]int, 0, b+1)
	j := n
	for k := b; k >= 1; k-- {
		bounds = append(bounds, j)
		j = cut[k][j]
	}
	bounds = append(bounds, 0)
	sort.Ints(bounds)
	out := make([]Bucket, 0, b)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		sum := pre[hi] - pre[lo]
		out = append(out, Bucket{
			Lo:     float64(lo),
			Hi:     float64(hi),
			Height: sum / float64(hi-lo),
			Count:  hi - lo,
		})
	}
	return out, dp[b][n], nil
}

// SSEOfBuckets evaluates the total squared error of approximating values
// by the given index-space buckets (as produced by VOptimal, or by
// converting another histogram to index space).
func SSEOfBuckets(values []float64, buckets []Bucket) float64 {
	total := 0.0
	for _, b := range buckets {
		lo, hi := int(b.Lo), int(b.Hi)
		for i := lo; i < hi && i < len(values); i++ {
			d := values[i] - b.Height
			total += d * d
		}
	}
	return total
}

// EquiWidthIndexBuckets splits a sequence into b equal index-width buckets
// with mean heights, for SSE comparison against VOptimal on the same data.
func EquiWidthIndexBuckets(values []float64, b int) []Bucket {
	n := len(values)
	if b <= 0 || n == 0 {
		return nil
	}
	if b > n {
		b = n
	}
	out := make([]Bucket, 0, b)
	for i := 0; i < b; i++ {
		lo := i * n / b
		hi := (i + 1) * n / b
		if lo == hi {
			continue
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += values[j]
		}
		out = append(out, Bucket{Lo: float64(lo), Hi: float64(hi), Height: sum / float64(hi-lo), Count: hi - lo})
	}
	return out
}

// EndBiased keeps exact counts for items with frequency above a threshold
// and models the rest with a single uniform "everything else" height — the
// end-biased histogram of Section 2, matched to Zipfian value-frequency
// data where a few values dominate.
type EndBiased struct {
	threshold uint64
	counts    map[float64]uint64
	restSum   float64
	restCount uint64
	n         uint64
}

// NewEndBiased returns an end-biased histogram tracking values whose
// frequency exceeds threshold exactly.
func NewEndBiased(threshold uint64) (*EndBiased, error) {
	if threshold == 0 {
		return nil, core.Errf("EndBiased", "threshold", "must be positive")
	}
	return &EndBiased{threshold: threshold, counts: make(map[float64]uint64)}, nil
}

// Update adds one value. (Exact counting per distinct value; the streaming
// variant would feed a Space-Saving summary — experiments use the exact
// form as the reference.)
func (eb *EndBiased) Update(v float64) {
	eb.n++
	eb.counts[v]++
}

// Model returns the frequent values (freq > threshold) with exact counts,
// plus the uniform frequency assigned to each remaining distinct value.
func (eb *EndBiased) Model() (exact map[float64]uint64, uniformFreq float64) {
	exact = make(map[float64]uint64)
	var restMass uint64
	var restDistinct uint64
	for v, c := range eb.counts {
		if c > eb.threshold {
			exact[v] = c
		} else {
			restMass += c
			restDistinct++
		}
	}
	if restDistinct == 0 {
		return exact, 0
	}
	return exact, float64(restMass) / float64(restDistinct)
}

// EstimateFreq returns the modelled frequency of value v.
func (eb *EndBiased) EstimateFreq(v float64) float64 {
	exact, uniform := eb.Model()
	if c, ok := exact[v]; ok {
		return float64(c)
	}
	return uniform
}

// Count returns the number of values added.
func (eb *EndBiased) Count() uint64 { return eb.n }
