// Package wavelet implements the Haar-wavelet synopsis from Section 2 of
// the tutorial: decompose a signal into Haar coefficients, keep the top-k
// by (normalized) magnitude, and reconstruct — the retained coefficients
// minimize the L2 reconstruction error among all k-coefficient choices,
// which is the property the survey highlights.
package wavelet

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Transform computes the (unnormalized) Haar wavelet decomposition of a
// signal whose length is padded up to the next power of two with zeros.
// The returned slice has the overall average at index 0 followed by detail
// coefficients, standard Haar layout.
func Transform(signal []float64) []float64 {
	n := 1
	for n < len(signal) {
		n <<= 1
	}
	work := make([]float64, n)
	copy(work, signal)
	out := make([]float64, n)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := work[2*i], work[2*i+1]
			out[i] = (a + b) / 2      // averages (next level input)
			out[half+i] = (a - b) / 2 // details
		}
		copy(work[:length], out[:length])
	}
	return work
}

// Inverse reconstructs the signal from a full Haar coefficient vector.
func Inverse(coeffs []float64) []float64 {
	n := len(coeffs)
	work := make([]float64, n)
	copy(work, coeffs)
	tmp := make([]float64, n)
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			avg, det := work[i], work[half+i]
			tmp[2*i] = avg + det
			tmp[2*i+1] = avg - det
		}
		copy(work[:length], tmp[:length])
	}
	return work
}

// levelOf returns the Haar level of coefficient index i (0 for the
// average), used to normalize magnitudes before thresholding: in the
// unnormalized transform, a coefficient at a coarser level influences more
// signal positions, so its effective L2 weight is sqrt of its support.
func levelOf(i, n int) int {
	if i == 0 {
		return 0
	}
	level := 0
	for p := 1; p <= i; p <<= 1 {
		level++
	}
	return level
}

// Synopsis is a top-k Haar synopsis: the k largest (L2-normalized)
// coefficients with their positions.
type Synopsis struct {
	N       int // padded signal length
	Indexes []int
	Values  []float64
}

// NewSynopsis builds a k-coefficient synopsis of the signal.
func NewSynopsis(signal []float64, k int) (*Synopsis, error) {
	if k <= 0 {
		return nil, core.Errf("wavelet.Synopsis", "k", "%d must be positive", k)
	}
	coeffs := Transform(signal)
	n := len(coeffs)
	type scored struct {
		idx   int
		score float64
	}
	all := make([]scored, n)
	for i, c := range coeffs {
		// Normalized L2 contribution: |c| * sqrt(support size).
		support := n
		if i > 0 {
			level := levelOf(i, n)
			support = n >> uint(level-1)
			if support == 0 {
				support = 1
			}
		}
		all[i] = scored{idx: i, score: math.Abs(c) * math.Sqrt(float64(support))}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].score > all[b].score })
	if k > n {
		k = n
	}
	s := &Synopsis{N: n, Indexes: make([]int, k), Values: make([]float64, k)}
	for i := 0; i < k; i++ {
		s.Indexes[i] = all[i].idx
		s.Values[i] = coeffs[all[i].idx]
	}
	return s, nil
}

// Reconstruct expands the synopsis back to a full signal of length n
// (zero-filled coefficients elsewhere).
func (s *Synopsis) Reconstruct() []float64 {
	coeffs := make([]float64, s.N)
	for i, idx := range s.Indexes {
		coeffs[idx] = s.Values[i]
	}
	return Inverse(coeffs)
}

// Bytes approximates the synopsis footprint.
func (s *Synopsis) Bytes() int { return len(s.Indexes)*12 + 16 }

// L2Error returns the L2 norm of (signal - approx) over the shorter of the
// two, the metric the S2.2 experiment reports.
func L2Error(signal, approx []float64) float64 {
	n := len(signal)
	if len(approx) < n {
		n = len(approx)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := signal[i] - approx[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
