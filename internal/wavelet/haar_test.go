package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestTransformInverseRoundTrip(t *testing.T) {
	signal := []float64{4, 2, 6, 8, 1, 3, 5, 7}
	coeffs := Transform(signal)
	back := Inverse(coeffs)
	for i, v := range signal {
		if math.Abs(back[i]-v) > 1e-9 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, back[i], v)
		}
	}
}

func TestTransformPadsToPowerOfTwo(t *testing.T) {
	signal := []float64{1, 2, 3, 4, 5} // pads to 8
	coeffs := Transform(signal)
	if len(coeffs) != 8 {
		t.Fatalf("coeff length %d", len(coeffs))
	}
	back := Inverse(coeffs)
	for i, v := range signal {
		if math.Abs(back[i]-v) > 1e-9 {
			t.Fatalf("padded round trip differs at %d", i)
		}
	}
	for i := 5; i < 8; i++ {
		if math.Abs(back[i]) > 1e-9 {
			t.Fatalf("padding not zero at %d: %v", i, back[i])
		}
	}
}

func TestTransformConstantSignal(t *testing.T) {
	signal := []float64{3, 3, 3, 3}
	coeffs := Transform(signal)
	if coeffs[0] != 3 {
		t.Fatalf("average coefficient %v", coeffs[0])
	}
	for i := 1; i < len(coeffs); i++ {
		if coeffs[i] != 0 {
			t.Fatalf("detail %d nonzero: %v", i, coeffs[i])
		}
	}
}

func TestSynopsisCapturesStep(t *testing.T) {
	// A step function is one average plus one detail coefficient: a k=2
	// synopsis must reconstruct it exactly.
	signal := make([]float64, 64)
	for i := 32; i < 64; i++ {
		signal[i] = 10
	}
	s, err := NewSynopsis(signal, 2)
	if err != nil {
		t.Fatal(err)
	}
	back := s.Reconstruct()
	if e := L2Error(signal, back); e > 1e-9 {
		t.Fatalf("step not captured by 2 coefficients: L2 error %v", e)
	}
}

func TestSynopsisErrorDecreasesWithK(t *testing.T) {
	rng := workload.NewRNG(1)
	spec := workload.SeriesSpec{N: 256, Base: 10, SeasonAmp: 5, SeasonLen: 64, NoiseSD: 1}
	signal := spec.Generate(rng, nil).Values
	prev := math.MaxFloat64
	for _, k := range []int{2, 8, 32, 128, 256} {
		s, err := NewSynopsis(signal, k)
		if err != nil {
			t.Fatal(err)
		}
		e := L2Error(signal, s.Reconstruct())
		if e > prev+1e-9 {
			t.Fatalf("error increased at k=%d: %v > %v", k, e, prev)
		}
		prev = e
	}
	// Full coefficient set reconstructs exactly.
	if prev > 1e-6 {
		t.Fatalf("full synopsis error %v", prev)
	}
}

func TestSynopsisValidation(t *testing.T) {
	if _, err := NewSynopsis([]float64{1, 2}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		signal := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			signal = append(signal, v)
		}
		if len(signal) == 0 {
			return true
		}
		back := Inverse(Transform(signal))
		for i, v := range signal {
			// Relative tolerance: averaging loses a few ulps.
			if math.Abs(back[i]-v) > 1e-6*(1+math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransform1024(b *testing.B) {
	signal := make([]float64, 1024)
	for i := range signal {
		signal[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(signal)
	}
}
