package workload

// Edge is an undirected graph-stream edge. Graph-stream algorithms in this
// repository consume edges one at a time, in arrival order.
type Edge struct {
	U, V int
}

// RandomGraph returns m pseudo-random edges over n vertices (Erdős–Rényi
// style, self-loops excluded, duplicates allowed as in real edge streams).
func RandomGraph(rng *RNG, n, m int) []Edge {
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	return edges
}

// PreferentialGraph grows a Barabási–Albert style graph: each new vertex
// attaches k edges to endpoints sampled proportionally to degree. This
// models the heavy-tailed web/social graphs the tutorial's "web graph
// analysis" application refers to.
func PreferentialGraph(rng *RNG, n, k int) []Edge {
	if n < 2 {
		return nil
	}
	var edges []Edge
	// endpoint multiset: a vertex appears once per incident edge,
	// so sampling uniformly from it is degree-proportional sampling.
	endpoints := []int{0, 1}
	edges = append(edges, Edge{U: 0, V: 1})
	for v := 2; v < n; v++ {
		attach := k
		if attach > v {
			attach = v
		}
		chosen := map[int]bool{}
		for len(chosen) < attach {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == v || chosen[u] {
				continue
			}
			chosen[u] = true
			edges = append(edges, Edge{U: u, V: v})
			endpoints = append(endpoints, u, v)
		}
	}
	return edges
}

// Communities generates a planted-partition graph stream: c communities of
// size each, with intra-community edge probability pin and inter pout.
// Used by clustering and correlation experiments over graph data.
func Communities(rng *RNG, c, size int, pin, pout float64) []Edge {
	n := c * size
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if u/size == v/size {
				p = pin
			}
			if rng.Float64() < p {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	// Stream order should not reveal structure.
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	return edges
}

// PathGraph returns the edges of a simple path 0-1-2-...-n-1 in order,
// the worst case for bounded-length reachability queries.
func PathGraph(n int) []Edge {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	return edges
}
