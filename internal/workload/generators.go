package workload

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws integer items in [0, n) with P(i) proportional to 1/(i+1)^s,
// the canonical model for hashtag, URL and word frequencies that the
// tutorial's "trending hashtags" and "heavy hitters" applications assume.
//
// It uses inverse-CDF sampling over a precomputed table, which is exact and
// deterministic (unlike rejection sampling, whose draw count depends on the
// rejection pattern).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf returns a Zipf sampler over n items with exponent s >= 0.
// s = 0 degenerates to uniform; s around 1.0-1.5 models web-like skew.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Draw returns the next item.
func (z *Zipf) Draw() uint64 {
	u := z.rng.Float64()
	idx := sort.SearchFloat64s(z.cdf, u)
	if idx >= len(z.cdf) {
		idx = len(z.cdf) - 1
	}
	return uint64(idx)
}

// Stream draws m items.
func (z *Zipf) Stream(m int) []uint64 {
	out := make([]uint64, m)
	for i := range out {
		out[i] = z.Draw()
	}
	return out
}

// Uniform returns m items drawn uniformly from [0, n).
func Uniform(rng *RNG, m, n int) []uint64 {
	out := make([]uint64, m)
	for i := range out {
		out[i] = uint64(rng.Intn(n))
	}
	return out
}

// Distinct returns a stream containing each of n distinct keys exactly once,
// in pseudo-random order. Cardinality experiments use it as ground truth.
func Distinct(rng *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		// Spread keys over the full 64-bit space so hash-based sketches
		// see realistic inputs rather than small consecutive integers.
		out[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	rng.Shuffle(out)
	return out
}

// ExactCounts tallies a stream; experiments use it as the ground truth for
// frequency estimation.
func ExactCounts(stream []uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, x := range stream {
		m[x]++
	}
	return m
}

// ExactDistinct returns the true number of distinct items in a stream.
func ExactDistinct(stream []uint64) int {
	seen := make(map[uint64]struct{}, len(stream))
	for _, x := range stream {
		seen[x] = struct{}{}
	}
	return len(seen)
}

// Keys renders integer items as short strings ("k123"), for components that
// operate on string keys such as the topology engine and filters.
func Keys(stream []uint64) []string {
	out := make([]string, len(stream))
	for i, x := range stream {
		out[i] = fmt.Sprintf("k%d", x)
	}
	return out
}

// NearSorted returns 0..n-1 with a fraction of pseudo-random swaps applied,
// producing streams of controllable "sortedness" for the inversion-counting
// experiment (the paper's "measure sortedness of data" application).
func NearSorted(rng *RNG, n int, swapFraction float64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	swaps := int(float64(n) * swapFraction)
	for s := 0; s < swaps; s++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
