package workload

import "math"

// AnomalyKind labels the injected events in a generated series.
type AnomalyKind int

const (
	// Spike is a single-point additive outlier.
	Spike AnomalyKind = iota
	// LevelShift is a persistent change in the series mean.
	LevelShift
	// VarianceBurst is a window of inflated noise.
	VarianceBurst
)

// Anomaly records one injected event and where it lives in the series.
type Anomaly struct {
	Kind  AnomalyKind
	Index int     // first affected sample
	Len   int     // number of affected samples (1 for Spike)
	Mag   float64 // magnitude in units of the base noise sigma
}

// SeriesSpec describes a synthetic labelled time series: a sinusoidal
// seasonal component plus linear trend plus Gaussian noise, with anomalies
// injected at known positions. This stands in for the sensor/operational
// metric streams of the tutorial's anomaly-detection and prediction rows,
// while giving experiments exact labels to score against.
type SeriesSpec struct {
	N         int     // number of samples
	Base      float64 // mean level
	Trend     float64 // per-sample drift
	SeasonAmp float64 // amplitude of the seasonal sinusoid
	SeasonLen int     // period in samples (0 disables seasonality)
	NoiseSD   float64 // Gaussian noise sigma
}

// Series is a generated time series with its anomaly labels.
type Series struct {
	Values    []float64
	Anomalies []Anomaly
}

// Generate builds the series described by spec, injecting the given
// anomalies, using rng for the noise.
func (spec SeriesSpec) Generate(rng *RNG, anomalies []Anomaly) Series {
	vals := make([]float64, spec.N)
	for i := range vals {
		v := spec.Base + spec.Trend*float64(i)
		if spec.SeasonLen > 0 {
			v += spec.SeasonAmp * math.Sin(2*math.Pi*float64(i)/float64(spec.SeasonLen))
		}
		v += rng.NormFloat64() * spec.NoiseSD
		vals[i] = v
	}
	for _, a := range anomalies {
		switch a.Kind {
		case Spike:
			if a.Index >= 0 && a.Index < spec.N {
				vals[a.Index] += a.Mag * spec.NoiseSD
			}
		case LevelShift:
			for i := a.Index; i < spec.N && i < a.Index+a.Len; i++ {
				vals[i] += a.Mag * spec.NoiseSD
			}
		case VarianceBurst:
			for i := a.Index; i < spec.N && i < a.Index+a.Len; i++ {
				vals[i] += rng.NormFloat64() * a.Mag * spec.NoiseSD
			}
		}
	}
	return Series{Values: vals, Anomalies: anomalies}
}

// IsAnomalous reports whether sample i falls inside any injected anomaly,
// with a tolerance window of slack samples on each side (detectors that
// fire slightly late on a level shift still count as correct).
func (s Series) IsAnomalous(i, slack int) bool {
	for _, a := range s.Anomalies {
		lo := a.Index - slack
		hi := a.Index + a.Len - 1 + slack
		if a.Kind == Spike {
			hi = a.Index + slack
		}
		if i >= lo && i <= hi {
			return true
		}
	}
	return false
}

// WithMissing masks a fraction of the series values, returning the masked
// copy and the indexes removed. Prediction experiments impute these and
// score RMSE against the originals.
func WithMissing(rng *RNG, vals []float64, fraction float64) (masked []float64, missing []int) {
	masked = make([]float64, len(vals))
	copy(masked, vals)
	for i := range masked {
		if i > 0 && rng.Float64() < fraction {
			masked[i] = math.NaN()
			missing = append(missing, i)
		}
	}
	return masked, missing
}

// CorrelatedPair generates two series of length n where y tracks x with the
// given coupling in [0,1] (1 = identical up to noise, 0 = independent),
// optionally lagged. Correlation-discovery experiments plant pairs this way.
func CorrelatedPair(rng *RNG, n int, coupling float64, lag int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		src := 0.0
		if j := i - lag; j >= 0 && j < n {
			src = x[j]
		}
		y[i] = coupling*src + (1-coupling)*rng.NormFloat64()
	}
	return x, y
}
