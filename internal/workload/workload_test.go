package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", v)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 1000, 1.2)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Item 0 must dominate item 100 by roughly (101/1)^1.2; allow slack.
	if counts[0] < 20*counts[100] {
		t.Fatalf("zipf not skewed enough: c0=%d c100=%d", counts[0], counts[100])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("s=0 not uniform at %d: %d", i, c)
		}
	}
}

func TestDistinctHasNDistinct(t *testing.T) {
	r := NewRNG(17)
	s := Distinct(r, 5000)
	if got := ExactDistinct(s); got != 5000 {
		t.Fatalf("Distinct produced %d distinct, want 5000", got)
	}
}

func TestExactCounts(t *testing.T) {
	stream := []uint64{1, 2, 2, 3, 3, 3}
	c := ExactCounts(stream)
	if c[1] != 1 || c[2] != 2 || c[3] != 3 {
		t.Fatalf("bad counts: %v", c)
	}
}

func TestNearSortedFractionZeroSorted(t *testing.T) {
	r := NewRNG(19)
	s := NearSorted(r, 100, 0)
	for i := range s {
		if s[i] != uint64(i) {
			t.Fatal("zero swap fraction should be fully sorted")
		}
	}
}

func TestSeriesAnomalyLabels(t *testing.T) {
	spec := SeriesSpec{N: 1000, Base: 10, NoiseSD: 1}
	anoms := []Anomaly{
		{Kind: Spike, Index: 100, Len: 1, Mag: 8},
		{Kind: LevelShift, Index: 500, Len: 100, Mag: 5},
	}
	s := spec.Generate(NewRNG(23), anoms)
	if len(s.Values) != 1000 {
		t.Fatal("wrong length")
	}
	if !s.IsAnomalous(100, 0) || !s.IsAnomalous(550, 0) {
		t.Fatal("labels missing injected anomalies")
	}
	if s.IsAnomalous(300, 0) {
		t.Fatal("clean region labelled anomalous")
	}
	// The spike should be visibly larger than its neighbourhood.
	if s.Values[100] < s.Values[99]+4 {
		t.Fatalf("spike not injected: %v vs %v", s.Values[100], s.Values[99])
	}
}

func TestSeriesSeasonality(t *testing.T) {
	spec := SeriesSpec{N: 400, Base: 0, SeasonAmp: 10, SeasonLen: 100, NoiseSD: 0.01}
	s := spec.Generate(NewRNG(29), nil)
	// Peak near quarter period, trough near three quarters.
	if s.Values[25] < 5 {
		t.Fatalf("expected seasonal peak, got %v", s.Values[25])
	}
	if s.Values[75] > -5 {
		t.Fatalf("expected seasonal trough, got %v", s.Values[75])
	}
}

func TestWithMissing(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	masked, missing := WithMissing(NewRNG(31), vals, 0.2)
	if len(missing) == 0 {
		t.Fatal("no values masked")
	}
	for _, idx := range missing {
		if !math.IsNaN(masked[idx]) {
			t.Fatal("missing index not NaN")
		}
	}
	if math.IsNaN(masked[0]) {
		t.Fatal("index 0 must never be masked")
	}
}

func TestCorrelatedPairCorrelation(t *testing.T) {
	x, y := CorrelatedPair(NewRNG(37), 20000, 0.9, 0)
	r := pearson(x, y)
	if r < 0.7 {
		t.Fatalf("planted correlation too weak: %v", r)
	}
	x2, y2 := CorrelatedPair(NewRNG(41), 20000, 0.0, 0)
	if r2 := pearson(x2, y2); math.Abs(r2) > 0.05 {
		t.Fatalf("independent pair shows correlation: %v", r2)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}

func TestRandomGraphNoSelfLoops(t *testing.T) {
	edges := RandomGraph(NewRNG(43), 50, 500)
	if len(edges) != 500 {
		t.Fatalf("want 500 edges, got %d", len(edges))
	}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatal("self loop generated")
		}
	}
}

func TestPreferentialGraphDegreeSkew(t *testing.T) {
	edges := PreferentialGraph(NewRNG(47), 2000, 2)
	deg := map[int]int{}
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	// BA graphs have hubs: max degree far above the mean (~4).
	if max < 20 {
		t.Fatalf("no hubs formed, max degree %d", max)
	}
}

func TestPathGraph(t *testing.T) {
	edges := PathGraph(5)
	if len(edges) != 4 {
		t.Fatalf("want 4 edges, got %d", len(edges))
	}
	if edges[0] != (Edge{0, 1}) || edges[3] != (Edge{3, 4}) {
		t.Fatalf("bad path edges: %v", edges)
	}
}

func TestCommunitiesPlantedStructure(t *testing.T) {
	edges := Communities(NewRNG(53), 2, 30, 0.5, 0.01)
	intra, inter := 0, 0
	for _, e := range edges {
		if e.U/30 == e.V/30 {
			intra++
		} else {
			inter++
		}
	}
	if intra < 5*inter {
		t.Fatalf("structure not planted: intra=%d inter=%d", intra, inter)
	}
}

func TestQuickShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint64, raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		cp := append([]uint64(nil), raw...)
		NewRNG(seed).Shuffle(cp)
		a := ExactCounts(raw)
		b := ExactCounts(cp)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
