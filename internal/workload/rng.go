// Package workload generates the deterministic synthetic streams used by
// every experiment in this repository.
//
// The tutorial's motivating workloads — tweets, IoT sensor readings,
// clickstreams, web graphs — are proprietary; what the algorithms actually
// respond to is the *shape* of the data: key skew, distinct-element count,
// ordering, drift, and injected events. This package produces those shapes
// reproducibly from explicit seeds so experiments and tests are exactly
// repeatable, a requirement the paper itself lists for streaming systems
// ("must guarantee predictable and repeatable outcomes").
package workload

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64
// core). It is intentionally independent of math/rand so the stream
// contents are stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes a slice of uint64 in place.
func (r *RNG) Shuffle(xs []uint64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
