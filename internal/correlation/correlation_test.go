package correlation

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestWindowedValidation(t *testing.T) {
	if _, err := NewWindowed(2); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestWindowedPerfectCorrelation(t *testing.T) {
	w, _ := NewWindowed(100)
	for i := 0; i < 200; i++ {
		w.Update(float64(i), 2*float64(i)+5)
	}
	if r := w.Corr(); math.Abs(r-1) > 1e-9 {
		t.Fatalf("perfect linear corr %v", r)
	}
	w2, _ := NewWindowed(100)
	for i := 0; i < 200; i++ {
		w2.Update(float64(i), -3*float64(i))
	}
	if r := w2.Corr(); math.Abs(r+1) > 1e-9 {
		t.Fatalf("perfect negative corr %v", r)
	}
}

func TestWindowedConstantSeriesZero(t *testing.T) {
	w, _ := NewWindowed(50)
	for i := 0; i < 100; i++ {
		w.Update(5, float64(i))
	}
	if r := w.Corr(); r != 0 {
		t.Fatalf("constant-x corr %v", r)
	}
}

func TestWindowedSlidesOutOldRegime(t *testing.T) {
	w, _ := NewWindowed(100)
	rng := workload.NewRNG(1)
	// First: strongly correlated regime.
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64()
		w.Update(x, x+rng.NormFloat64()*0.1)
	}
	if w.Corr() < 0.9 {
		t.Fatalf("correlated regime corr %v", w.Corr())
	}
	// Then: independent regime; after a full window the correlation must
	// have collapsed.
	for i := 0; i < 200; i++ {
		w.Update(rng.NormFloat64(), rng.NormFloat64())
	}
	if math.Abs(w.Corr()) > 0.3 {
		t.Fatalf("stale correlation persisted: %v", w.Corr())
	}
}

func TestWindowedNumericalStability(t *testing.T) {
	w, _ := NewWindowed(100)
	rng := workload.NewRNG(2)
	// Huge offset, small correlated signal.
	for i := 0; i < 100000; i++ {
		x := rng.NormFloat64()
		w.Update(1e9+x, 2e9+x+rng.NormFloat64()*0.5)
	}
	if r := w.Corr(); r < 0.7 {
		t.Fatalf("correlation lost to cancellation: %v", r)
	}
}

func TestPairScannerFindsPlantedPair(t *testing.T) {
	const k = 8
	ps, err := NewPairScanner(k, 200)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(3)
	// Streams 2 and 5 are coupled; all others independent.
	for i := 0; i < 1000; i++ {
		vals := make([]float64, k)
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		vals[5] = vals[2]*0.95 + rng.NormFloat64()*0.1
		ps.Update(vals)
	}
	hits := ps.Above(0.8)
	if len(hits) != 1 {
		t.Fatalf("found %d pairs above 0.8: %+v", len(hits), hits)
	}
	if hits[0].I != 2 || hits[0].J != 5 {
		t.Fatalf("wrong pair: %+v", hits[0])
	}
}

func TestPairScannerValidation(t *testing.T) {
	if _, err := NewPairScanner(1, 100); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestCrossCorrelationRecoversLag(t *testing.T) {
	x, y := workload.CorrelatedPair(workload.NewRNG(4), 5000, 0.95, 7)
	lag, corr := CrossCorrelation(x, y, 20)
	if lag != 7 {
		t.Fatalf("recovered lag %d, want 7 (corr %v)", lag, corr)
	}
	if corr < 0.7 {
		t.Fatalf("lagged correlation %v too weak", corr)
	}
}

func TestCrossCorrelationZeroLagBest(t *testing.T) {
	x, y := workload.CorrelatedPair(workload.NewRNG(5), 5000, 0.9, 0)
	lag, _ := CrossCorrelation(x, y, 10)
	if lag != 0 {
		t.Fatalf("lag %d, want 0", lag)
	}
}

func TestCorrelatedAggregate(t *testing.T) {
	// Mean of y where x > 10, over the last 100 samples.
	ca, err := NewCorrelatedAggregate(100, func(x float64) bool { return x > 10 })
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ca.Mean(); ok {
		t.Fatal("empty aggregate reported a mean")
	}
	// 50 samples with x=20,y=7 and 50 with x=0,y=100.
	for i := 0; i < 50; i++ {
		ca.Update(20, 7)
		ca.Update(0, 100)
	}
	m, ok := ca.Mean()
	if !ok || m != 7 {
		t.Fatalf("correlated mean %v ok=%v, want 7", m, ok)
	}
	// Slide the window full of non-qualifying samples.
	for i := 0; i < 100; i++ {
		ca.Update(0, 1)
	}
	if _, ok := ca.Mean(); ok {
		t.Fatal("expired qualifiers still reported")
	}
}

func BenchmarkWindowedUpdate(b *testing.B) {
	w, _ := NewWindowed(1000)
	for i := 0; i < b.N; i++ {
		w.Update(float64(i%100), float64((i*7)%100))
	}
}

func BenchmarkPairScanner16(b *testing.B) {
	ps, _ := NewPairScanner(16, 500)
	vals := make([]float64, 16)
	for i := 0; i < b.N; i++ {
		for j := range vals {
			vals[j] = float64((i + j) % 50)
		}
		ps.Update(vals)
	}
}
