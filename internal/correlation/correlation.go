// Package correlation implements streaming correlation discovery — the
// tutorial's Table 1 "Correlation" row, whose application is fraud
// detection: find, among many concurrent series, the pairs that move
// together (possibly at a lag).
//
// It provides windowed Pearson correlation maintained incrementally, a
// multi-stream scanner that reports pairs whose correlation exceeds a
// threshold (the Wang–Wang composite-correlation setting), lagged
// cross-correlation (Sayal's time-correlation rule mining), and correlated
// aggregates (Section 2's sliding-window problem list).
package correlation

import (
	"math"

	"repro/internal/core"
	"repro/internal/window"
)

// Windowed maintains the Pearson correlation between two synchronized
// series over a sliding window of n samples, updated in O(1) per pair of
// arrivals via offset-shifted running sums.
type Windowed struct {
	n          int
	xs, ys     []float64
	pos        int
	filled     int
	offX, offY float64
	hasOff     bool
	sx, sy     float64
	sxx, syy   float64
	sxy        float64
	sinceRecmp int
}

// NewWindowed returns a windowed correlation tracker over n sample pairs.
func NewWindowed(n int) (*Windowed, error) {
	if n < 3 {
		return nil, core.Errf("correlation.Windowed", "n", "%d must be >= 3", n)
	}
	return &Windowed{n: n, xs: make([]float64, n), ys: make([]float64, n)}, nil
}

// Update pushes one (x, y) observation pair.
func (w *Windowed) Update(x, y float64) {
	if !w.hasOff {
		w.offX, w.offY = x, y
		w.hasOff = true
	}
	if w.filled == w.n {
		ox := w.xs[w.pos] - w.offX
		oy := w.ys[w.pos] - w.offY
		w.sx -= ox
		w.sy -= oy
		w.sxx -= ox * ox
		w.syy -= oy * oy
		w.sxy -= ox * oy
	} else {
		w.filled++
	}
	w.xs[w.pos] = x
	w.ys[w.pos] = y
	dx := x - w.offX
	dy := y - w.offY
	w.sx += dx
	w.sy += dy
	w.sxx += dx * dx
	w.syy += dy * dy
	w.sxy += dx * dy
	w.pos = (w.pos + 1) % w.n

	w.sinceRecmp++
	if w.sinceRecmp >= 8*w.n {
		w.recompute()
	}
}

func (w *Windowed) recompute() {
	w.sx, w.sy, w.sxx, w.syy, w.sxy = 0, 0, 0, 0, 0
	for i := 0; i < w.filled; i++ {
		dx := w.xs[i] - w.offX
		dy := w.ys[i] - w.offY
		w.sx += dx
		w.sy += dy
		w.sxx += dx * dx
		w.syy += dy * dy
		w.sxy += dx * dy
	}
	w.sinceRecmp = 0
}

// Corr returns the current Pearson correlation (0 until 3 pairs have
// arrived or when either series is constant).
func (w *Windowed) Corr() float64 {
	if w.filled < 3 {
		return 0
	}
	n := float64(w.filled)
	cov := w.sxy/n - (w.sx/n)*(w.sy/n)
	vx := w.sxx/n - (w.sx/n)*(w.sx/n)
	vy := w.syy/n - (w.sy/n)*(w.sy/n)
	if vx <= 1e-15 || vy <= 1e-15 {
		return 0
	}
	r := cov / math.Sqrt(vx*vy)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r
}

// Filled returns the number of pairs currently in the window.
func (w *Windowed) Filled() int { return w.filled }

// PairScanner tracks k synchronized streams and maintains windowed
// correlation for every pair, reporting those above a threshold. The
// O(k^2) pair state is the exact method; sketch-based pruning (DFT
// coefficients) is provided by Prune below for the candidate-generation
// stage, mirroring the BRAID/StatStream-style pipeline the survey's
// citations describe.
type PairScanner struct {
	k     int
	pairs [][]*Windowed // upper triangle: pairs[i][j-i-1] for j > i
	n     uint64
}

// NewPairScanner returns a scanner over k streams with the given window.
func NewPairScanner(k, windowN int) (*PairScanner, error) {
	if k < 2 {
		return nil, core.Errf("PairScanner", "k", "%d must be >= 2", k)
	}
	pairs := make([][]*Windowed, k)
	for i := 0; i < k; i++ {
		pairs[i] = make([]*Windowed, k-i-1)
		for j := range pairs[i] {
			w, err := NewWindowed(windowN)
			if err != nil {
				return nil, err
			}
			pairs[i][j] = w
		}
	}
	return &PairScanner{k: k, pairs: pairs}, nil
}

// Update pushes one synchronized sample from every stream (len(vals) must
// equal k).
func (p *PairScanner) Update(vals []float64) {
	p.n++
	for i := 0; i < p.k; i++ {
		for j := i + 1; j < p.k; j++ {
			p.pairs[i][j-i-1].Update(vals[i], vals[j])
		}
	}
}

// CorrelatedPair is one reported stream pair.
type CorrelatedPair struct {
	I, J int
	Corr float64
}

// Above returns all pairs with |corr| >= threshold.
func (p *PairScanner) Above(threshold float64) []CorrelatedPair {
	var out []CorrelatedPair
	for i := 0; i < p.k; i++ {
		for j := i + 1; j < p.k; j++ {
			r := p.pairs[i][j-i-1].Corr()
			if math.Abs(r) >= threshold {
				out = append(out, CorrelatedPair{I: i, J: j, Corr: r})
			}
		}
	}
	return out
}

// CrossCorrelation computes the Pearson correlation of x against y shifted
// by each lag in [0, maxLag], returning the lag with the strongest
// absolute correlation and that correlation — Sayal's time-correlation
// primitive.
func CrossCorrelation(x, y []float64, maxLag int) (bestLag int, bestCorr float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for lag := 0; lag <= maxLag; lag++ {
		if n-lag < 3 {
			break
		}
		r := pearson(x[:n-lag], y[lag:n])
		if math.Abs(r) > math.Abs(bestCorr) {
			bestCorr = r
			bestLag = lag
		}
	}
	return bestLag, bestCorr
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 1e-15 || vy <= 1e-15 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// CorrelatedAggregate maintains the Section 2 "correlated aggregate"
// AGG{y : x satisfies predicate} over a sliding window: e.g. the mean
// latency (y) of requests whose size (x) exceeds a threshold.
type CorrelatedAggregate struct {
	pred  func(x float64) bool
	stats *window.SlidingStats
	win   int
	// ring of (x, y) so expiring entries can be replayed against the
	// predicate
	xs, ys []float64
	pos    int
	filled int
}

// NewCorrelatedAggregate returns a correlated mean-aggregate of y over the
// last n samples whose x satisfies pred.
func NewCorrelatedAggregate(n int, pred func(x float64) bool) (*CorrelatedAggregate, error) {
	if n <= 0 {
		return nil, core.Errf("CorrelatedAggregate", "n", "%d must be positive", n)
	}
	if pred == nil {
		return nil, core.Errf("CorrelatedAggregate", "pred", "must be non-nil")
	}
	return &CorrelatedAggregate{
		pred: pred,
		win:  n,
		xs:   make([]float64, n),
		ys:   make([]float64, n),
	}, nil
}

// Update pushes one (x, y) observation.
func (c *CorrelatedAggregate) Update(x, y float64) {
	c.xs[c.pos] = x
	c.ys[c.pos] = y
	c.pos = (c.pos + 1) % c.win
	if c.filled < c.win {
		c.filled++
	}
}

// Mean returns the mean of y over in-window samples with pred(x); ok is
// false when no sample qualifies.
func (c *CorrelatedAggregate) Mean() (mean float64, ok bool) {
	sum := 0.0
	count := 0
	for i := 0; i < c.filled; i++ {
		if c.pred(c.xs[i]) {
			sum += c.ys[i]
			count++
		}
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}
