package cluster

import (
	"math"

	"repro/internal/core"
)

// MicroClusters maintains CluStream-style cluster-feature vectors
// (N, LS, SS per micro-cluster) online: arrivals join the nearest
// micro-cluster if within its adaptive radius, otherwise found a new one;
// at capacity the two closest micro-clusters merge. CF additivity is what
// makes this the distributed-friendly stream clusterer of the survey's
// O'Callaghan et al. line, and the micro-clusters feed any offline macro
// clusterer (here: weighted k-means++).
type MicroClusters struct {
	max    int
	dim    int
	radius float64 // radius multiplier over the cluster's RMS deviation
	mcs    []cf
	n      uint64
}

// cf is a cluster feature vector: count, linear sum, square sum.
type cf struct {
	n  float64
	ls Point
	ss Point
}

func (c *cf) centroid() Point {
	out := make(Point, len(c.ls))
	for i := range out {
		out[i] = c.ls[i] / c.n
	}
	return out
}

// rmsDeviation is the root-mean-square distance of members from the
// centroid.
func (c *cf) rmsDeviation() float64 {
	if c.n < 2 {
		return 0
	}
	sum := 0.0
	for i := range c.ls {
		mean := c.ls[i] / c.n
		v := c.ss[i]/c.n - mean*mean
		if v > 0 {
			sum += v
		}
	}
	return math.Sqrt(sum)
}

func (c *cf) absorb(p Point) {
	c.n++
	for i := range p {
		c.ls[i] += p[i]
		c.ss[i] += p[i] * p[i]
	}
}

func (c *cf) merge(o *cf) {
	c.n += o.n
	for i := range c.ls {
		c.ls[i] += o.ls[i]
		c.ss[i] += o.ss[i]
	}
}

// NewMicroClusters returns a micro-cluster maintainer with at most max
// micro-clusters over dim-dimensional points; radiusFactor scales the
// absorption radius (2.0 is the CluStream default).
func NewMicroClusters(max, dim int, radiusFactor float64) (*MicroClusters, error) {
	if max < 2 {
		return nil, core.Errf("MicroClusters", "max", "%d must be >= 2", max)
	}
	if dim <= 0 {
		return nil, core.Errf("MicroClusters", "dim", "%d must be positive", dim)
	}
	if radiusFactor <= 0 {
		return nil, core.Errf("MicroClusters", "radiusFactor", "%v must be positive", radiusFactor)
	}
	return &MicroClusters{max: max, dim: dim, radius: radiusFactor}, nil
}

// Update absorbs one point.
func (m *MicroClusters) Update(p Point) {
	m.n++
	if len(m.mcs) == 0 {
		m.found(p)
		return
	}
	// Nearest micro-cluster by centroid distance.
	best, bestD := -1, math.MaxFloat64
	for i := range m.mcs {
		d := math.Sqrt(sqDist(p, m.mcs[i].centroid()))
		if d < bestD {
			best, bestD = i, d
		}
	}
	mc := &m.mcs[best]
	limit := m.radius * mc.rmsDeviation()
	if limit == 0 {
		// Singleton cluster: adopt a small default reach relative to the
		// nearest-other-centroid distance.
		limit = bestD / 2
	}
	if bestD <= limit {
		mc.absorb(p)
		return
	}
	m.found(p)
}

func (m *MicroClusters) found(p Point) {
	nc := cf{n: 1, ls: append(Point(nil), p...), ss: make(Point, len(p))}
	for i := range p {
		nc.ss[i] = p[i] * p[i]
	}
	m.mcs = append(m.mcs, nc)
	if len(m.mcs) > m.max {
		m.mergeClosest()
	}
}

func (m *MicroClusters) mergeClosest() {
	bi, bj, bd := -1, -1, math.MaxFloat64
	for i := 0; i < len(m.mcs); i++ {
		ci := m.mcs[i].centroid()
		for j := i + 1; j < len(m.mcs); j++ {
			if d := sqDist(ci, m.mcs[j].centroid()); d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	m.mcs[bi].merge(&m.mcs[bj])
	m.mcs = append(m.mcs[:bj], m.mcs[bj+1:]...)
}

// Count returns the number of micro-clusters.
func (m *MicroClusters) Count() int { return len(m.mcs) }

// Items returns the number of points processed.
func (m *MicroClusters) Items() uint64 { return m.n }

// Snapshot returns the micro-cluster centroids with their populations,
// ready to feed a macro clusterer.
func (m *MicroClusters) Snapshot() (centers []Point, weights []float64) {
	for i := range m.mcs {
		centers = append(centers, m.mcs[i].centroid())
		weights = append(weights, m.mcs[i].n)
	}
	return centers, weights
}

// Bytes approximates the CF footprint.
func (m *MicroClusters) Bytes() int { return len(m.mcs) * (m.dim*16 + 8) }
