package cluster

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// gaussianMixture draws n points from c well-separated Gaussians in 2D and
// returns the points plus the true means.
func gaussianMixture(seed uint64, n, c int, sep, sd float64) ([]Point, []Point) {
	rng := workload.NewRNG(seed)
	means := make([]Point, c)
	for i := range means {
		means[i] = Point{sep * float64(i), sep * float64(i%2)}
	}
	pts := make([]Point, n)
	for i := range pts {
		m := means[rng.Intn(c)]
		pts[i] = Point{m[0] + rng.NormFloat64()*sd, m[1] + rng.NormFloat64()*sd}
	}
	return pts, means
}

// centersCover checks every true mean has a center within tol.
func centersCover(centers, means []Point, tol float64) bool {
	for _, m := range means {
		_, d := nearest(m, centers)
		if math.Sqrt(d) > tol {
			return false
		}
	}
	return true
}

func TestKMeansPPRecoversMixture(t *testing.T) {
	pts, means := gaussianMixture(1, 3000, 4, 20, 1)
	rng := workload.NewRNG(2)
	centers := KMeansPP(pts, nil, 4, 10, rng)
	if len(centers) != 4 {
		t.Fatalf("got %d centers", len(centers))
	}
	if !centersCover(centers, means, 2) {
		t.Fatalf("centers %v do not cover means %v", centers, means)
	}
}

func TestKMeansPPWeighted(t *testing.T) {
	// Two locations, one with 100x the weight: a k=1 clustering must land
	// near the heavy one.
	pts := []Point{{0, 0}, {10, 10}}
	w := []float64{100, 1}
	centers := KMeansPP(pts, w, 1, 5, workload.NewRNG(3))
	if d := math.Sqrt(sqDist(centers[0], Point{0, 0})); d > 1 {
		t.Fatalf("weighted center %v too far from heavy point", centers[0])
	}
}

func TestKMeansPPEdgeCases(t *testing.T) {
	if c := KMeansPP(nil, nil, 3, 5, workload.NewRNG(1)); c != nil {
		t.Fatal("empty input produced centers")
	}
	pts := []Point{{1, 1}, {2, 2}}
	c := KMeansPP(pts, nil, 5, 5, workload.NewRNG(1))
	if len(c) > 2 {
		t.Fatalf("k>n produced %d centers", len(c))
	}
}

func TestOnlineKMeansTracksMixture(t *testing.T) {
	pts, means := gaussianMixture(4, 20000, 4, 30, 1)
	o, _ := NewOnlineKMeans(4, 2)
	for _, p := range pts {
		o.Update(p)
	}
	// Online k-means is greedy; require coverage within a loose tolerance.
	if !centersCover(o.Centers(), means, 10) {
		t.Fatalf("online centers %v missed means %v", o.Centers(), means)
	}
}

func TestStreamKMedianQualityNearOffline(t *testing.T) {
	pts, _ := gaussianMixture(5, 20000, 5, 25, 1.5)
	s, err := NewStreamKMedian(5, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		s.Update(p)
	}
	streamC := s.Centers()
	offline := KMeansPP(pts, nil, 5, 10, workload.NewRNG(8))
	sseStream := SSE(pts, nil, streamC)
	sseOffline := SSE(pts, nil, offline)
	// The STREAM guarantee is constant-factor; 3x covers the constant at
	// this separation comfortably.
	if sseStream > 3*sseOffline {
		t.Fatalf("stream SSE %v vs offline %v", sseStream, sseOffline)
	}
	// And it must hold far less than the full dataset.
	if s.Bytes() > 20000*16/4 {
		t.Fatalf("stream clusterer kept %d bytes", s.Bytes())
	}
}

func TestStreamKMedianValidation(t *testing.T) {
	if _, err := NewStreamKMedian(0, 100, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewStreamKMedian(10, 10, 1); err == nil {
		t.Fatal("chunk < 2k accepted")
	}
}

func TestMicroClustersAbsorbAndBound(t *testing.T) {
	m, err := NewMicroClusters(50, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := gaussianMixture(6, 10000, 4, 30, 1)
	for _, p := range pts {
		m.Update(p)
	}
	if m.Count() > 50 {
		t.Fatalf("micro-cluster cap exceeded: %d", m.Count())
	}
	if m.Count() < 4 {
		t.Fatalf("collapsed to %d micro-clusters", m.Count())
	}
	centers, weights := m.Snapshot()
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	if totalW != 10000 {
		t.Fatalf("CF mass %v, want 10000", totalW)
	}
	// Macro clustering of the snapshot should recover the mixture.
	macro := KMeansPP(centers, weights, 4, 10, workload.NewRNG(9))
	_, means := gaussianMixture(6, 1, 4, 30, 1)
	if !centersCover(macro, means, 5) {
		t.Fatalf("macro centers %v missed means", macro)
	}
}

func TestMicroClustersValidation(t *testing.T) {
	if _, err := NewMicroClusters(1, 2, 2); err == nil {
		t.Fatal("max=1 accepted")
	}
	if _, err := NewMicroClusters(10, 0, 2); err == nil {
		t.Fatal("dim=0 accepted")
	}
	if _, err := NewMicroClusters(10, 2, 0); err == nil {
		t.Fatal("radius=0 accepted")
	}
}

func TestSSEZeroAtPoints(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}}
	if s := SSE(pts, nil, pts); s != 0 {
		t.Fatalf("SSE %v with centers == points", s)
	}
}

func BenchmarkOnlineKMeansUpdate(b *testing.B) {
	o, _ := NewOnlineKMeans(10, 4)
	p := Point{1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		p[0] = float64(i % 100)
		o.Update(p)
	}
}

func BenchmarkMicroClustersUpdate(b *testing.B) {
	m, _ := NewMicroClusters(100, 2, 2)
	rng := workload.NewRNG(1)
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(pts[i%len(pts)])
	}
}
