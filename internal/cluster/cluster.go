// Package cluster implements data-stream clustering — the tutorial's
// Table 1 "Clustering" row and the k-median discussion of Section 2 —
// with the three standard strategies its citations span:
//
//   - Online (sequential) k-means: assign each arrival to the nearest
//     center and nudge that center (the one-pass baseline).
//   - STREAM-style chunked k-median (Guha–Mishra–Motwani–O'Callaghan):
//     buffer chunks, cluster each chunk with weighted k-means++ and Lloyd
//     iterations, then cluster the weighted chunk centers.
//   - CluStream-style micro-clusters (cluster-feature vectors with
//     temporal decay) for evolving streams.
//
// A weighted k-means++ / Lloyd implementation is shared by all of them and
// doubles as the offline baseline of experiment T1.14.
package cluster

import (
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// Point is a dense d-dimensional point.
type Point []float64

func sqDist(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// nearest returns the index of the closest center and its squared distance.
func nearest(p Point, centers []Point) (int, float64) {
	best, bestD := -1, math.MaxFloat64
	for i, c := range centers {
		if d := sqDist(p, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// KMeansPP seeds k centers from weighted points with the k-means++ rule
// (D^2 sampling) and refines them with `iters` Lloyd iterations. It is the
// building block of the STREAM pipeline and the offline baseline.
func KMeansPP(points []Point, weights []float64, k, iters int, rng *workload.RNG) []Point {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	if weights == nil {
		weights = make([]float64, len(points))
		for i := range weights {
			weights[i] = 1
		}
	}
	if k > len(points) {
		k = len(points)
	}
	// D^2 seeding.
	centers := make([]Point, 0, k)
	first := rng.Intn(len(points))
	centers = append(centers, append(Point(nil), points[first]...))
	d2 := make([]float64, len(points))
	for len(centers) < k {
		total := 0.0
		for i, p := range points {
			_, d := nearest(p, centers)
			d2[i] = d * weights[i]
			total += d2[i]
		}
		if total == 0 {
			break
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append(Point(nil), points[idx]...))
	}
	// Lloyd refinement with weights.
	dim := len(points[0])
	for it := 0; it < iters; it++ {
		sums := make([]Point, len(centers))
		wsum := make([]float64, len(centers))
		for i := range sums {
			sums[i] = make(Point, dim)
		}
		for i, p := range points {
			ci, _ := nearest(p, centers)
			for d := 0; d < dim; d++ {
				sums[ci][d] += p[d] * weights[i]
			}
			wsum[ci] += weights[i]
		}
		for ci := range centers {
			if wsum[ci] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centers[ci][d] = sums[ci][d] / wsum[ci]
			}
		}
	}
	return centers
}

// SSE returns the weighted sum of squared distances of points to their
// nearest centers — the quality metric of experiment T1.14.
func SSE(points []Point, weights []float64, centers []Point) float64 {
	total := 0.0
	for i, p := range points {
		_, d := nearest(p, centers)
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		total += d * w
	}
	return total
}

// OnlineKMeans is the sequential one-pass clusterer: each arrival moves its
// nearest center by a per-center learning rate 1/count.
type OnlineKMeans struct {
	k       int
	dim     int
	centers []Point
	counts  []float64
	n       uint64
}

// NewOnlineKMeans returns a sequential k-means clusterer for d-dimensional
// points.
func NewOnlineKMeans(k, dim int) (*OnlineKMeans, error) {
	if k <= 0 {
		return nil, core.Errf("OnlineKMeans", "k", "%d must be positive", k)
	}
	if dim <= 0 {
		return nil, core.Errf("OnlineKMeans", "dim", "%d must be positive", dim)
	}
	return &OnlineKMeans{k: k, dim: dim}, nil
}

// Update assigns p to its nearest center, nudging the center toward it.
// The first k distinct arrivals seed the centers.
func (o *OnlineKMeans) Update(p Point) {
	o.n++
	if len(o.centers) < o.k {
		o.centers = append(o.centers, append(Point(nil), p...))
		o.counts = append(o.counts, 1)
		return
	}
	ci, _ := nearest(p, o.centers)
	o.counts[ci]++
	lr := 1 / o.counts[ci]
	for d := 0; d < o.dim; d++ {
		o.centers[ci][d] += lr * (p[d] - o.centers[ci][d])
	}
}

// Centers returns the current centers.
func (o *OnlineKMeans) Centers() []Point { return o.centers }

// Items returns the number of points processed.
func (o *OnlineKMeans) Items() uint64 { return o.n }

// StreamKMedian is the STREAM chunked pipeline: points are buffered in
// chunks of chunkSize; each full chunk is reduced to k weighted centers
// (k-means++ + Lloyd), and Centers() clusters the accumulated weighted
// centers down to the final k.
type StreamKMedian struct {
	k         int
	chunkSize int
	buf       []Point
	centers   []Point   // weighted intermediate centers
	weights   []float64 // weight (point count) per intermediate center
	rng       *workload.RNG
	n         uint64
}

// NewStreamKMedian returns a STREAM-style clusterer with the given chunk
// size.
func NewStreamKMedian(k, chunkSize int, seed uint64) (*StreamKMedian, error) {
	if k <= 0 {
		return nil, core.Errf("StreamKMedian", "k", "%d must be positive", k)
	}
	if chunkSize < 2*k {
		return nil, core.Errf("StreamKMedian", "chunkSize", "%d must be >= 2k", chunkSize)
	}
	return &StreamKMedian{k: k, chunkSize: chunkSize, rng: workload.NewRNG(seed)}, nil
}

// Update buffers one point, reducing the chunk when full.
func (s *StreamKMedian) Update(p Point) {
	s.n++
	s.buf = append(s.buf, append(Point(nil), p...))
	if len(s.buf) >= s.chunkSize {
		s.reduceChunk()
	}
}

func (s *StreamKMedian) reduceChunk() {
	centers := KMeansPP(s.buf, nil, s.k, 5, s.rng)
	// Weight each center by its assigned population.
	counts := make([]float64, len(centers))
	for _, p := range s.buf {
		ci, _ := nearest(p, centers)
		counts[ci]++
	}
	for i, c := range centers {
		if counts[i] == 0 {
			continue
		}
		s.centers = append(s.centers, c)
		s.weights = append(s.weights, counts[i])
	}
	s.buf = s.buf[:0]
	// Second-level compaction keeps memory bounded.
	if len(s.centers) > 20*s.k {
		lvl2 := KMeansPP(s.centers, s.weights, 2*s.k, 5, s.rng)
		w2 := make([]float64, len(lvl2))
		for i, c := range s.centers {
			ci, _ := nearest(c, lvl2)
			w2[ci] += s.weights[i]
		}
		s.centers = lvl2
		s.weights = w2
	}
}

// Centers flushes the buffer and returns the final k centers.
func (s *StreamKMedian) Centers() []Point {
	if len(s.buf) > 0 {
		s.reduceChunk()
	}
	if len(s.centers) <= s.k {
		return s.centers
	}
	return KMeansPP(s.centers, s.weights, s.k, 10, s.rng)
}

// Items returns the number of points processed.
func (s *StreamKMedian) Items() uint64 { return s.n }

// Bytes approximates the retained footprint (buffer + weighted centers).
func (s *StreamKMedian) Bytes() int {
	per := 8
	if len(s.buf) > 0 {
		per = len(s.buf[0]) * 8
	} else if len(s.centers) > 0 {
		per = len(s.centers[0]) * 8
	}
	return len(s.buf)*per + len(s.centers)*(per+8) + 48
}
