package quantile

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// rankError computes |trueRank(got) - phi*n| / n against a sorted oracle.
func rankError(sorted []float64, got, phi float64) float64 {
	n := float64(len(sorted))
	r := float64(sort.SearchFloat64s(sorted, got+1e-12))
	return math.Abs(r-phi*n) / n
}

func gaussianStream(seed uint64, n int) []float64 {
	rng := workload.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 100
	}
	return out
}

func TestGKParamValidation(t *testing.T) {
	if _, err := NewGK(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewGK(1); err == nil {
		t.Fatal("eps=1 accepted")
	}
}

func TestGKRankGuarantee(t *testing.T) {
	const eps = 0.01
	g, _ := NewGK(eps)
	stream := gaussianStream(1, 50000)
	for _, v := range stream {
		g.Update(v)
	}
	sorted := append([]float64(nil), stream...)
	sort.Float64s(sorted)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := g.Query(phi)
		if e := rankError(sorted, got, phi); e > eps*1.5 {
			t.Fatalf("phi=%.2f rank error %.4f > eps", phi, e)
		}
	}
}

func TestGKSpaceSublinear(t *testing.T) {
	g, _ := NewGK(0.01)
	for _, v := range gaussianStream(2, 200000) {
		g.Update(v)
	}
	// O((1/eps) log(eps n)) ~ 100 * log(2000) ~ 1100; generous ceiling.
	if g.Tuples() > 5000 {
		t.Fatalf("GK kept %d tuples for 200k items", g.Tuples())
	}
}

func TestGKSortedAdversarialOrder(t *testing.T) {
	// Ascending and descending insertion orders are the adversarial cases
	// for summary size and correctness.
	for name, gen := range map[string]func(i int) float64{
		"asc":  func(i int) float64 { return float64(i) },
		"desc": func(i int) float64 { return float64(100000 - i) },
	} {
		g, _ := NewGK(0.01)
		n := 50000
		for i := 0; i < n; i++ {
			g.Update(gen(i))
		}
		med := g.Query(0.5)
		var lo, hi float64
		if name == "asc" {
			lo, hi = float64(n)*0.48, float64(n)*0.52
		} else {
			lo, hi = float64(100000-n)+float64(n)*0.48, float64(100000-n)+float64(n)*0.52
		}
		if med < lo || med > hi {
			t.Fatalf("%s order: median %v outside [%v,%v]", name, med, lo, hi)
		}
	}
}

func TestGKEmptyAndSingle(t *testing.T) {
	g, _ := NewGK(0.05)
	if got := g.Query(0.5); got != 0 {
		t.Fatalf("empty query returned %v", got)
	}
	g.Update(42)
	if got := g.Query(0.5); got != 42 {
		t.Fatalf("single-element median %v", got)
	}
	if got := g.Query(-1); got != 42 {
		t.Fatalf("clamped phi returned %v", got)
	}
}

func TestExactBaseline(t *testing.T) {
	e := NewExact()
	for i := 1; i <= 100; i++ {
		e.Update(float64(i))
	}
	if got := e.Query(0.5); got != 51 {
		t.Fatalf("exact median %v", got)
	}
	if got := e.Query(0); got != 1 {
		t.Fatalf("exact min %v", got)
	}
	if got := e.Query(1); got != 100 {
		t.Fatalf("exact max %v", got)
	}
	if r := e.Rank(50); r != 50 {
		t.Fatalf("rank(50)=%d", r)
	}
}

func TestQDigestRankError(t *testing.T) {
	q, _ := NewQDigest(16, 200)
	rng := workload.NewRNG(3)
	vals := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		v := uint64(rng.Intn(60000))
		q.Update(v, 1)
		vals = append(vals, float64(v))
	}
	sort.Float64s(vals)
	// Error bound: logU/k = 16/200 = 8% of n; check 2x slack.
	for _, phi := range []float64{0.25, 0.5, 0.75, 0.9} {
		got := float64(q.Query(phi))
		if e := rankError(vals, got, phi); e > 0.16 {
			t.Fatalf("qdigest phi=%.2f rank error %.4f", phi, e)
		}
	}
}

func TestQDigestSpaceBound(t *testing.T) {
	q, _ := NewQDigest(20, 100)
	rng := workload.NewRNG(4)
	for i := 0; i < 200000; i++ {
		q.Update(uint64(rng.Intn(1<<20)), 1)
	}
	q.Compress()
	// Space is O(k); 6k is the pre-compress ceiling.
	if q.Nodes() > 700 {
		t.Fatalf("qdigest holds %d nodes for k=100", q.Nodes())
	}
}

func TestQDigestMergeEqualsConcat(t *testing.T) {
	a, _ := NewQDigest(12, 150)
	b, _ := NewQDigest(12, 150)
	full, _ := NewQDigest(12, 150)
	rng := workload.NewRNG(5)
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(4000))
		vals = append(vals, float64(v))
		full.Update(v, 1)
		if i%2 == 0 {
			a.Update(v, 1)
		} else {
			b.Update(v, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != full.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), full.Count())
	}
	sort.Float64s(vals)
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		got := float64(a.Query(phi))
		if e := rankError(vals, got, phi); e > 0.2 {
			t.Fatalf("merged qdigest phi=%.2f rank error %.4f", phi, e)
		}
	}
	other, _ := NewQDigest(13, 150)
	if err := a.Merge(other); err == nil {
		t.Fatal("merged different universes")
	}
}

func TestQDigestClampsUniverse(t *testing.T) {
	q, _ := NewQDigest(8, 10)
	q.Update(1<<20, 1) // far outside [0,256)
	if got := q.Query(1); got > 255 {
		t.Fatalf("out-of-universe value leaked: %d", got)
	}
}

func TestFrugal1UConverges(t *testing.T) {
	f, _ := NewFrugal1U(0.5, 7)
	rng := workload.NewRNG(6)
	// Uniform integers 0..999: median 500. Frugal moves +-1 per step, so
	// give it a long stream.
	for i := 0; i < 500000; i++ {
		f.Update(float64(rng.Intn(1000)))
	}
	if est := f.Query(); est < 400 || est > 600 {
		t.Fatalf("frugal1u median estimate %v, want ~500", est)
	}
}

func TestFrugal2UConvergesFasterOnLargeScale(t *testing.T) {
	// Values near 1e6: Frugal1U crawls, Frugal2U's adaptive step catches up.
	rng := workload.NewRNG(7)
	f1, _ := NewFrugal1U(0.5, 8)
	f2, _ := NewFrugal2U(0.5, 8)
	for i := 0; i < 200000; i++ {
		v := 1e6 + float64(rng.Intn(1000))
		f1.Update(v)
		f2.Update(v)
	}
	e1 := math.Abs(f1.Query() - 1000500)
	e2 := math.Abs(f2.Query() - 1000500)
	if e2 > e1 {
		t.Fatalf("frugal2u (%v) did not beat frugal1u (%v) on shifted stream", e2, e1)
	}
	if e2 > 5000 {
		t.Fatalf("frugal2u error %v too large", e2)
	}
}

func TestCKMSTargetedAccuracy(t *testing.T) {
	c, err := NewCKMS([]Target{{Phi: 0.5, Eps: 0.02}, {Phi: 0.99, Eps: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	stream := gaussianStream(9, 100000)
	for _, v := range stream {
		c.Update(v)
	}
	sorted := append([]float64(nil), stream...)
	sort.Float64s(sorted)
	if e := rankError(sorted, c.Query(0.5), 0.5); e > 0.04 {
		t.Fatalf("ckms p50 rank error %.4f", e)
	}
	if e := rankError(sorted, c.Query(0.99), 0.99); e > 0.005 {
		t.Fatalf("ckms p99 rank error %.5f", e)
	}
}

func TestCKMSSpaceBelowUniformGK(t *testing.T) {
	// For tail-targeted queries, CKMS must retain far fewer samples than a
	// uniform GK at the tail's eps.
	c, _ := NewCKMS([]Target{{Phi: 0.99, Eps: 0.001}})
	g, _ := NewGK(0.001)
	stream := gaussianStream(10, 100000)
	for _, v := range stream {
		c.Update(v)
		g.Update(v)
	}
	if c.Samples() >= g.Tuples() {
		t.Fatalf("ckms %d samples not below uniform GK %d", c.Samples(), g.Tuples())
	}
}

func TestCKMSValidation(t *testing.T) {
	if _, err := NewCKMS(nil); err == nil {
		t.Fatal("empty targets accepted")
	}
	if _, err := NewCKMS([]Target{{Phi: 0, Eps: 0.1}}); err == nil {
		t.Fatal("phi=0 accepted")
	}
	if _, err := NewCKMS([]Target{{Phi: 0.5, Eps: 0}}); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestQuickGKWithinGlobalBounds(t *testing.T) {
	// Property: GK's answer is always one of the inserted values, and its
	// rank error stays within 2*eps for arbitrary inputs.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		g, _ := NewGK(0.1)
		for _, v := range vals {
			g.Update(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// One rank of slack on top of the bound covers tiny streams, where
		// a single position is a large fraction of n.
		slack := 0.25 + 1.5/float64(len(vals))
		for _, phi := range []float64{0.25, 0.5, 0.75} {
			if rankError(sorted, g.Query(phi), phi) > slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGKUpdate(b *testing.B) {
	g, _ := NewGK(0.01)
	stream := gaussianStream(1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(stream[i%len(stream)])
	}
}

func BenchmarkQDigestUpdate(b *testing.B) {
	q, _ := NewQDigest(20, 500)
	for i := 0; i < b.N; i++ {
		q.Update(uint64(i)%(1<<20), 1)
	}
}

func BenchmarkFrugal2U(b *testing.B) {
	f, _ := NewFrugal2U(0.9, 1)
	for i := 0; i < b.N; i++ {
		f.Update(float64(i % 1000))
	}
}

func TestQDigestReset(t *testing.T) {
	q, _ := NewQDigest(10, 16)
	for i := uint64(0); i < 500; i++ {
		q.Update(i%1000, 1)
	}
	q.Reset()
	if q.Count() != 0 || q.Nodes() != 0 {
		t.Fatalf("reset digest not empty: count %d, nodes %d", q.Count(), q.Nodes())
	}
	q.Update(7, 3)
	if q.Count() != 3 || q.Query(0.5) != 7 {
		t.Fatalf("post-reset digest wrong: count %d, median %d", q.Count(), q.Query(0.5))
	}
}
