package quantile

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Frugal1U is the one-word frugal quantile estimator of Ma, Muthukrishnan
// and Sandler ("Frugal streaming for estimating quantiles", cited by the
// survey): it keeps a single value and moves it up with probability phi and
// down with probability 1-phi on each observation. It converges to the
// phi-quantile of a stationary stream using one unit of memory — the
// extreme end of the space/accuracy trade-off curve in experiment T1.5.
type Frugal1U struct {
	phi float64
	est float64
	n   uint64
	rng *workload.RNG
}

// NewFrugal1U returns a one-word estimator for the phi-quantile.
func NewFrugal1U(phi float64, seed uint64) (*Frugal1U, error) {
	if phi <= 0 || phi >= 1 {
		return nil, core.Errf("Frugal1U", "phi", "%v not in (0,1)", phi)
	}
	return &Frugal1U{phi: phi, rng: workload.NewRNG(seed)}, nil
}

// Update observes one value.
func (f *Frugal1U) Update(v float64) {
	f.n++
	if f.n == 1 {
		f.est = v
		return
	}
	r := f.rng.Float64()
	switch {
	case v > f.est && r < f.phi:
		f.est++
	case v < f.est && r < 1-f.phi:
		f.est--
	}
}

// Query returns the current estimate (phi is fixed at construction).
func (f *Frugal1U) Query() float64 { return f.est }

// Count returns the number of observations.
func (f *Frugal1U) Count() uint64 { return f.n }

// Bytes returns the single-word footprint.
func (f *Frugal1U) Bytes() int { return 8 }

// Frugal2U is the two-word variant: it adapts its step size, growing while
// consecutive moves share a direction and shrinking on direction changes,
// which converges far faster on streams whose scale is far from 1 while
// still using O(1) memory.
type Frugal2U struct {
	phi  float64
	est  float64
	step float64
	sign int
	n    uint64
	rng  *workload.RNG
}

// NewFrugal2U returns a two-word adaptive estimator for the phi-quantile.
func NewFrugal2U(phi float64, seed uint64) (*Frugal2U, error) {
	if phi <= 0 || phi >= 1 {
		return nil, core.Errf("Frugal2U", "phi", "%v not in (0,1)", phi)
	}
	return &Frugal2U{phi: phi, step: 1, sign: 1, rng: workload.NewRNG(seed)}, nil
}

// Update observes one value.
func (f *Frugal2U) Update(v float64) {
	f.n++
	if f.n == 1 {
		f.est = v
		return
	}
	r := f.rng.Float64()
	if v > f.est && r < f.phi {
		if f.sign > 0 {
			f.step += 1
		} else {
			f.step /= 2
			if f.step < 1 {
				f.step = 1
			}
		}
		move := f.step
		if move > v-f.est {
			move = v - f.est
		}
		f.est += move
		f.sign = 1
	} else if v < f.est && r < 1-f.phi {
		if f.sign < 0 {
			f.step += 1
		} else {
			f.step /= 2
			if f.step < 1 {
				f.step = 1
			}
		}
		move := f.step
		if move > f.est-v {
			move = f.est - v
		}
		f.est -= move
		f.sign = -1
	}
}

// Query returns the current estimate.
func (f *Frugal2U) Query() float64 { return f.est }

// Count returns the number of observations.
func (f *Frugal2U) Count() uint64 { return f.n }

// Bytes returns the two-word footprint.
func (f *Frugal2U) Bytes() int { return 16 }
