package quantile

import (
	"repro/internal/core"
)

// Windowed answers quantile queries over the last W stream values with
// bounded memory, in the Arasu–Manku style the survey cites ("approximate
// counts and quantiles over sliding windows"): the window is split into
// ceil(W/block) blocks; arriving values feed the newest block's GK
// summary; full blocks are frozen and expired wholesale as the window
// slides. A query merges the live blocks' summaries.
//
// Rank error is eps (per-block GK) plus up to one block of boundary slack,
// so callers pick block size ~ eps*W to balance the two terms.
type Windowed struct {
	eps      float64
	window   int
	block    int
	blocks   []*GK // oldest first; last is the open block
	inOpen   int
	total    uint64
	queryBuf []blockSample
}

type blockSample struct {
	v float64
	g float64
}

// NewWindowed returns a sliding-window quantile summary over the last
// window values with per-block rank error eps.
func NewWindowed(window int, eps float64) (*Windowed, error) {
	if window < 4 {
		return nil, core.Errf("quantile.Windowed", "window", "%d must be >= 4", window)
	}
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("quantile.Windowed", "eps", "%v not in (0,1)", eps)
	}
	block := int(float64(window) * eps)
	if block < 1 {
		block = 1
	}
	w := &Windowed{eps: eps, window: window, block: block}
	g, _ := NewGK(eps)
	w.blocks = append(w.blocks, g)
	return w, nil
}

// Update inserts one value, expiring blocks that slid out of the window.
func (w *Windowed) Update(v float64) {
	w.total++
	open := w.blocks[len(w.blocks)-1]
	open.Update(v)
	w.inOpen++
	if w.inOpen >= w.block {
		g, _ := NewGK(w.eps)
		w.blocks = append(w.blocks, g)
		w.inOpen = 0
	}
	// Keep enough blocks to cover the window: the open block plus
	// ceil(window/block) frozen ones.
	maxBlocks := w.window/w.block + 2
	if len(w.blocks) > maxBlocks {
		w.blocks = w.blocks[len(w.blocks)-maxBlocks:]
	}
}

// Query returns the approximate phi-quantile of (roughly) the last
// `window` values. It merges the live blocks by weight-proportional
// sampling of their quantile curves.
func (w *Windowed) Query(phi float64) float64 {
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	// Gather a coarse merged CDF: probe each block at a grid of quantiles
	// weighted by its count, then pick the global phi point.
	w.queryBuf = w.queryBuf[:0]
	var totalCount uint64
	for _, b := range w.blocks {
		totalCount += b.Count()
	}
	if totalCount == 0 {
		return 0
	}
	const grid = 32
	for _, b := range w.blocks {
		if b.Count() == 0 {
			continue
		}
		// Fractional weights keep the total probe mass equal to the total
		// count, so the phi target lands at the right fraction regardless
		// of block-size/grid divisibility.
		per := float64(b.Count()) / grid
		for i := 0; i < grid; i++ {
			q := (float64(i) + 0.5) / grid
			w.queryBuf = append(w.queryBuf, blockSample{v: b.Query(q), g: per})
		}
	}
	// Select the phi-weighted value.
	sortBlockSamples(w.queryBuf)
	target := phi * float64(totalCount)
	var acc float64
	for _, s := range w.queryBuf {
		acc += s.g
		if acc >= target {
			return s.v
		}
	}
	return w.queryBuf[len(w.queryBuf)-1].v
}

func sortBlockSamples(xs []blockSample) {
	// insertion sort: the buffer is small (blocks * 32) and mostly sorted
	// across consecutive queries
	for i := 1; i < len(xs); i++ {
		s := xs[i]
		j := i - 1
		for j >= 0 && xs[j].v > s.v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = s
	}
}

// Count returns the number of values inserted over the stream's lifetime.
func (w *Windowed) Count() uint64 { return w.total }

// Bytes approximates the footprint across live blocks.
func (w *Windowed) Bytes() int {
	total := 48
	for _, b := range w.blocks {
		total += b.Bytes()
	}
	return total
}

// Blocks returns the number of live blocks (diagnostics).
func (w *Windowed) Blocks() int { return len(w.blocks) }
