// serialize.go gives the q-digest a binary codec for the store's
// checkpoint path. The digest is a plain (node id -> count) map plus its
// configuration, so the layout is the map written in ascending id order
// (deterministic bytes for equal digests):
//
//	[magic u32][logU u8][k u64][n u64][nodes u32]
//	[nodes x: id u64, count u64]
package quantile

import (
	"encoding/binary"
	"sort"

	"repro/internal/core"
)

const qdMagic = 0x51444947 // "QDIG"

const qdHeaderSize = 4 + 1 + 8 + 8 + 4

// MarshalBinary encodes the digest.
func (q *QDigest) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, qdHeaderSize+len(q.counts)*16)
	out = binary.LittleEndian.AppendUint32(out, qdMagic)
	out = append(out, q.logU)
	out = binary.LittleEndian.AppendUint64(out, q.k)
	out = binary.LittleEndian.AppendUint64(out, q.n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(q.counts)))
	ids := make([]uint64, 0, len(q.counts))
	for id := range q.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = binary.LittleEndian.AppendUint64(out, id)
		out = binary.LittleEndian.AppendUint64(out, q.counts[id])
	}
	return out, nil
}

// UnmarshalBinary decodes into the receiver, replacing its contents. The
// receiver's universe (logU) and compression factor (k) must match the
// encoder's: merging digests over different universes is already
// rejected, and decode holds the same line with ErrIncompatible.
func (q *QDigest) UnmarshalBinary(data []byte) error {
	if len(data) < qdHeaderSize || binary.LittleEndian.Uint32(data[0:]) != qdMagic {
		return core.ErrCorrupt
	}
	if data[4] != q.logU || binary.LittleEndian.Uint64(data[5:]) != q.k {
		return core.ErrIncompatible
	}
	n := binary.LittleEndian.Uint64(data[13:])
	nodes := int(binary.LittleEndian.Uint32(data[21:]))
	if len(data) != qdHeaderSize+nodes*16 {
		return core.ErrCorrupt
	}
	q.Reset()
	q.n = n
	pos := qdHeaderSize
	maxID := (uint64(1) << (q.logU + 1)) - 1
	for i := 0; i < nodes; i++ {
		id := binary.LittleEndian.Uint64(data[pos:])
		c := binary.LittleEndian.Uint64(data[pos+8:])
		pos += 16
		if id < 1 || id > maxID || c == 0 {
			return core.ErrCorrupt
		}
		q.counts[id] = c
	}
	return nil
}
