package quantile

import (
	"sort"

	"repro/internal/core"
)

// CKMS is the biased-quantiles summary of Cormode, Korn, Muthukrishnan and
// Srivastava (the survey cites the Zhang–Wang refinement of the same
// problem): like Greenwald–Khanna, but the permitted rank uncertainty is a
// *targeted* function — tight around the quantiles the caller declares
// interesting (e.g. p50/p99/p999 latency objectives) and loose elsewhere,
// so tail quantiles cost far less space than a uniform-eps summary of
// equal tail accuracy.
type CKMS struct {
	targets []Target
	n       uint64
	samples []ckmsSample
	buf     []float64
}

// Target declares one quantile of interest and its allowed rank error.
type Target struct {
	Phi float64 // quantile in (0,1)
	Eps float64 // allowed rank error at Phi
}

type ckmsSample struct {
	v     float64
	g     uint64
	delta uint64
}

// NewCKMS returns a targeted-quantile summary for the given targets.
func NewCKMS(targets []Target) (*CKMS, error) {
	if len(targets) == 0 {
		return nil, core.Errf("CKMS", "targets", "must declare at least one target")
	}
	for _, t := range targets {
		if t.Phi <= 0 || t.Phi >= 1 {
			return nil, core.Errf("CKMS", "targets", "phi %v not in (0,1)", t.Phi)
		}
		if t.Eps <= 0 || t.Eps >= 1 {
			return nil, core.Errf("CKMS", "targets", "eps %v not in (0,1)", t.Eps)
		}
	}
	return &CKMS{targets: append([]Target(nil), targets...)}, nil
}

// invariant returns the permitted uncertainty f(r, n) at rank r.
func (c *CKMS) invariant(rank float64) float64 {
	minErr := float64(c.n) // effectively +inf
	n := float64(c.n)
	for _, t := range c.targets {
		var e float64
		if rank <= t.Phi*n {
			e = 2 * t.Eps * (n - rank) / (1 - t.Phi)
		} else {
			e = 2 * t.Eps * rank / t.Phi
		}
		if e < minErr {
			minErr = e
		}
	}
	if minErr < 1 {
		minErr = 1
	}
	return minErr
}

const ckmsBufCap = 512

// Update inserts one value (buffered; flushed on query or every 512).
func (c *CKMS) Update(v float64) {
	c.buf = append(c.buf, v)
	if len(c.buf) >= ckmsBufCap {
		c.flush()
	}
}

func (c *CKMS) flush() {
	if len(c.buf) == 0 {
		return
	}
	sort.Float64s(c.buf)
	out := make([]ckmsSample, 0, len(c.samples)+len(c.buf))
	bi := 0
	var rank uint64
	for _, s := range c.samples {
		for bi < len(c.buf) && c.buf[bi] <= s.v {
			c.n++
			var delta uint64
			if rank > 0 && len(out) > 0 {
				delta = uint64(c.invariant(float64(rank))) - 1
			}
			out = append(out, ckmsSample{v: c.buf[bi], g: 1, delta: delta})
			rank++
			bi++
		}
		out = append(out, s)
		rank += s.g
	}
	for bi < len(c.buf) {
		c.n++
		out = append(out, ckmsSample{v: c.buf[bi], g: 1, delta: 0})
		bi++
	}
	c.samples = out
	c.buf = c.buf[:0]
	c.compress()
}

func (c *CKMS) compress() {
	if len(c.samples) < 3 {
		return
	}
	// Scan right-to-left, absorbing each tuple into its right neighbour
	// when the combined uncertainty fits the invariant at that rank
	// (Cormode et al.'s COMPRESS). The first tuple is never absorbed so
	// the minimum stays exact.
	var rank uint64
	for _, s := range c.samples {
		rank += s.g
	}
	rev := make([]ckmsSample, 0, len(c.samples))
	x := c.samples[len(c.samples)-1]
	rank -= x.g // rank of the tuple preceding x
	for i := len(c.samples) - 2; i >= 1; i-- {
		cur := c.samples[i]
		if float64(cur.g+x.g+x.delta) <= c.invariant(float64(rank)) {
			x.g += cur.g
		} else {
			rev = append(rev, x)
			x = cur
		}
		rank -= cur.g
	}
	rev = append(rev, x)
	rev = append(rev, c.samples[0])
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	c.samples = rev
}

// Query returns the estimated phi-quantile.
func (c *CKMS) Query(phi float64) float64 {
	c.flush()
	if len(c.samples) == 0 {
		return 0
	}
	if phi <= 0 {
		return c.samples[0].v
	}
	if phi >= 1 {
		return c.samples[len(c.samples)-1].v
	}
	target := phi * float64(c.n)
	bound := c.invariant(target) / 2
	var rank uint64
	for i := 0; i < len(c.samples)-1; i++ {
		rank += c.samples[i].g
		next := c.samples[i+1]
		if float64(rank+next.g)+float64(next.delta) > target+bound {
			return c.samples[i].v
		}
	}
	return c.samples[len(c.samples)-1].v
}

// Count returns the number of values inserted.
func (c *CKMS) Count() uint64 {
	return c.n + uint64(len(c.buf))
}

// Samples returns the number of retained samples (space metric).
func (c *CKMS) Samples() int {
	c.flush()
	return len(c.samples)
}

// Bytes approximates the footprint.
func (c *CKMS) Bytes() int { return len(c.samples)*24 + len(c.buf)*8 + 48 }
