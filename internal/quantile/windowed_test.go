package quantile

import (
	"math"
	"sort"
	"testing"

	"repro/internal/workload"
)

func TestWindowedValidation(t *testing.T) {
	if _, err := NewWindowed(2, 0.05); err == nil {
		t.Fatal("window=2 accepted")
	}
	if _, err := NewWindowed(100, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestWindowedTracksRecentDistribution(t *testing.T) {
	const window = 5000
	w, err := NewWindowed(window, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(1)
	// Regime 1: N(0, 1). Regime 2: N(100, 1). After a full window of the
	// second regime the median must be near 100, not near 50.
	for i := 0; i < 3*window; i++ {
		w.Update(rng.NormFloat64())
	}
	med1 := w.Query(0.5)
	if math.Abs(med1) > 1 {
		t.Fatalf("regime-1 median %v", med1)
	}
	for i := 0; i < 2*window; i++ {
		w.Update(100 + rng.NormFloat64())
	}
	med2 := w.Query(0.5)
	if math.Abs(med2-100) > 2 {
		t.Fatalf("regime-2 median %v, want ~100 (stale window leaked)", med2)
	}
}

func TestWindowedRankErrorBound(t *testing.T) {
	const window = 8000
	const eps = 0.02
	w, _ := NewWindowed(window, eps)
	rng := workload.NewRNG(2)
	ring := make([]float64, 0, window)
	for i := 0; i < 40000; i++ {
		v := rng.ExpFloat64() * 50
		w.Update(v)
		ring = append(ring, v)
		if len(ring) > window {
			ring = ring[1:]
		}
		if i > window && i%4001 == 0 {
			sorted := append([]float64(nil), ring...)
			sort.Float64s(sorted)
			for _, phi := range []float64{0.25, 0.5, 0.9} {
				got := w.Query(phi)
				r := float64(sort.SearchFloat64s(sorted, got+1e-12))
				relRank := math.Abs(r-phi*float64(len(sorted))) / float64(len(sorted))
				// eps per block + one block boundary slack + merge grid.
				if relRank > 5*eps {
					t.Fatalf("tick %d phi %.2f: window rank error %.4f", i, phi, relRank)
				}
			}
		}
	}
}

func TestWindowedSpaceSublinear(t *testing.T) {
	const window = 100000
	w, _ := NewWindowed(window, 0.02)
	rng := workload.NewRNG(3)
	for i := 0; i < 3*window; i++ {
		w.Update(rng.NormFloat64())
	}
	if w.Bytes() >= window*8/4 {
		t.Fatalf("windowed summary %dB not sublinear vs %dB exact", w.Bytes(), window*8)
	}
	if w.Blocks() > window/int(0.02*float64(window))+3 {
		t.Fatalf("too many blocks: %d", w.Blocks())
	}
}

func TestWindowedEmptyQuery(t *testing.T) {
	w, _ := NewWindowed(100, 0.1)
	if got := w.Query(0.5); got != 0 {
		t.Fatalf("empty query %v", got)
	}
}

func BenchmarkWindowedUpdate(b *testing.B) {
	w, _ := NewWindowed(100000, 0.01)
	for i := 0; i < b.N; i++ {
		w.Update(float64(i % 1000))
	}
}
