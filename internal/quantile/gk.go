// Package quantile implements the streaming quantile summaries from the
// tutorial's "Estimating Quantiles" row of Table 1: the Greenwald–Khanna
// summary (deterministic eps-approximate ranks), the q-digest (Shrivastava
// et al., mergeable, for fixed integer domains), the biased-quantile CKMS
// variant (fine accuracy in the tails), and the frugal estimators of
// Ma–Muthukrishnan–Sandler (one or two words of memory), with an exact
// baseline for experiments.
package quantile

import (
	"sort"

	"repro/internal/core"
)

// GK is the Greenwald–Khanna eps-approximate quantile summary. After n
// updates, Query(phi) returns a value whose rank differs from phi*n by at
// most eps*n, using O((1/eps) log(eps n)) tuples.
type GK struct {
	eps   float64
	n     uint64
	tuple []gkTuple
	// compress every 1/(2 eps) inserts, per the paper
	sinceCompress int
}

type gkTuple struct {
	v     float64
	g     uint64 // rankMin(v_i) - rankMin(v_{i-1})
	delta uint64 // rankMax(v_i) - rankMin(v_i)
}

// NewGK returns a Greenwald–Khanna summary with rank error eps.
func NewGK(eps float64) (*GK, error) {
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("GK", "eps", "%v not in (0,1)", eps)
	}
	return &GK{eps: eps}, nil
}

// Update inserts one value.
func (g *GK) Update(v float64) {
	g.n++
	// Find insertion point (first tuple with value >= v).
	idx := sort.Search(len(g.tuple), func(i int) bool { return g.tuple[i].v >= v })
	var delta uint64
	if idx != 0 && idx != len(g.tuple) {
		delta = uint64(2 * g.eps * float64(g.n))
		if delta > 0 {
			delta--
		}
	}
	nt := gkTuple{v: v, g: 1, delta: delta}
	g.tuple = append(g.tuple, gkTuple{})
	copy(g.tuple[idx+1:], g.tuple[idx:])
	g.tuple[idx] = nt

	g.sinceCompress++
	if float64(g.sinceCompress) >= 1/(2*g.eps) {
		g.compress()
		g.sinceCompress = 0
	}
}

// compress merges adjacent tuples whose combined uncertainty stays within
// the 2*eps*n band.
func (g *GK) compress() {
	if len(g.tuple) < 3 {
		return
	}
	bound := uint64(2 * g.eps * float64(g.n))
	out := g.tuple[:0]
	out = append(out, g.tuple[0])
	for i := 1; i < len(g.tuple); i++ {
		cur := g.tuple[i]
		last := &out[len(out)-1]
		// Merge last into cur when allowed (never merge the final tuple
		// away; it anchors the maximum).
		if len(out) > 1 && i < len(g.tuple) && last.g+cur.g+cur.delta <= bound {
			cur.g += last.g
			out[len(out)-1] = cur
		} else {
			out = append(out, cur)
		}
	}
	g.tuple = out
}

// Query returns a value whose rank is within eps*n of phi*n. phi is clamped
// to [0,1]. Querying an empty summary returns 0.
func (g *GK) Query(phi float64) float64 {
	if len(g.tuple) == 0 {
		return 0
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * float64(g.n)
	bound := g.eps * float64(g.n)
	var rMin uint64
	for i, t := range g.tuple {
		rMin += t.g
		rMax := float64(rMin + t.delta)
		if float64(rMin) >= target-bound && rMax <= target+bound {
			return t.v
		}
		if i == len(g.tuple)-1 {
			break
		}
	}
	// Fallback: the closest tuple by minimum rank.
	rMin = 0
	best := g.tuple[0].v
	bestDist := target
	for _, t := range g.tuple {
		rMin += t.g
		d := float64(rMin) - target
		if d < 0 {
			d = -d
		}
		if d <= bestDist {
			bestDist = d
			best = t.v
		}
	}
	return best
}

// Count returns the number of values inserted.
func (g *GK) Count() uint64 { return g.n }

// Tuples returns the current summary size (the space bound experiments
// track).
func (g *GK) Tuples() int { return len(g.tuple) }

// Bytes approximates the summary footprint.
func (g *GK) Bytes() int { return len(g.tuple)*24 + 32 }

// Exact is the exact-quantile baseline: it retains every value. Used as
// ground truth and as the memory yardstick sketches are compared against.
type Exact struct {
	vals   []float64
	sorted bool
}

// NewExact returns an empty exact quantile accumulator.
func NewExact() *Exact { return &Exact{} }

// Update inserts one value.
func (e *Exact) Update(v float64) {
	e.vals = append(e.vals, v)
	e.sorted = false
}

// Query returns the exact phi-quantile (nearest-rank definition).
func (e *Exact) Query(phi float64) float64 {
	if len(e.vals) == 0 {
		return 0
	}
	if !e.sorted {
		sort.Float64s(e.vals)
		e.sorted = true
	}
	if phi <= 0 {
		return e.vals[0]
	}
	if phi >= 1 {
		return e.vals[len(e.vals)-1]
	}
	idx := int(phi * float64(len(e.vals)))
	if idx >= len(e.vals) {
		idx = len(e.vals) - 1
	}
	return e.vals[idx]
}

// Rank returns the exact rank of v (number of values <= v).
func (e *Exact) Rank(v float64) int {
	if !e.sorted {
		sort.Float64s(e.vals)
		e.sorted = true
	}
	return sort.SearchFloat64s(e.vals, v+1e-12)
}

// Count returns the number of values inserted.
func (e *Exact) Count() uint64 { return uint64(len(e.vals)) }

// Bytes returns the full retained footprint.
func (e *Exact) Bytes() int { return len(e.vals) * 8 }
