package quantile

import (
	"sort"

	"repro/internal/core"
)

// QDigest is the Shrivastava–Buragohain–Agrawal–Suri q-digest ("Medians and
// beyond", designed for sensor networks, cited by the survey): a compressed
// binary tree over a fixed integer universe [0, 2^logU) in which each node
// holds a count, maintained so that every non-root node's family
// (node+parent+sibling) carries at least n/k mass. It answers rank queries
// with error at most log(U)/k * n and — its defining property — merges by
// simple counter addition, which is why sensor aggregation trees use it.
type QDigest struct {
	logU   uint8
	k      uint64 // compression factor
	n      uint64
	counts map[uint64]uint64 // node id (1-based heap order) -> count
}

// NewQDigest returns a q-digest over the universe [0, 2^logU) with
// compression factor k.
func NewQDigest(logU uint8, k uint64) (*QDigest, error) {
	if logU == 0 || logU > 32 {
		return nil, core.Errf("QDigest", "logU", "%d not in [1,32]", logU)
	}
	if k == 0 {
		return nil, core.Errf("QDigest", "k", "must be positive")
	}
	return &QDigest{logU: logU, k: k, counts: make(map[uint64]uint64)}, nil
}

// leafID returns the heap-order id of the leaf for value v.
func (q *QDigest) leafID(v uint64) uint64 {
	return (uint64(1) << q.logU) + v
}

// Update inserts value v (clamped to the universe), with weight w.
func (q *QDigest) Update(v uint64, w uint64) {
	maxV := (uint64(1) << q.logU) - 1
	if v > maxV {
		v = maxV
	}
	q.counts[q.leafID(v)] += w
	q.n += w
	if uint64(len(q.counts)) > 6*q.k {
		q.Compress()
	}
}

// Compress restores the q-digest invariant by pushing small counts upward.
func (q *QDigest) Compress() {
	if q.n == 0 {
		return
	}
	threshold := q.n / q.k
	// Process nodes from deepest level upward.
	ids := make([]uint64, 0, len(q.counts))
	for id := range q.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	for _, id := range ids {
		if id <= 1 {
			continue
		}
		c := q.counts[id]
		if c == 0 {
			delete(q.counts, id)
			continue
		}
		sib := id ^ 1
		parent := id / 2
		family := c + q.counts[sib] + q.counts[parent]
		if family < threshold {
			q.counts[parent] = family
			delete(q.counts, id)
			delete(q.counts, sib)
		}
	}
}

// Query returns a value whose rank approximates phi*n with error at most
// logU/k * n.
func (q *QDigest) Query(phi float64) uint64 {
	if q.n == 0 {
		return 0
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * float64(q.n)
	// Postorder traversal in increasing value order: sort nodes by
	// (rightmost leaf, depth) so that accumulating counts respects the
	// value order, per the q-digest query rule.
	type nodeRange struct {
		id    uint64
		lo    uint64
		hi    uint64
		count uint64
	}
	nodes := make([]nodeRange, 0, len(q.counts))
	for id, c := range q.counts {
		lo, hi := q.spanOf(id)
		nodes = append(nodes, nodeRange{id: id, lo: lo, hi: hi, count: c})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].hi != nodes[j].hi {
			return nodes[i].hi < nodes[j].hi
		}
		// Smaller span (deeper node) first when right edges tie.
		return nodes[i].lo > nodes[j].lo
	})
	var acc float64
	for _, nd := range nodes {
		acc += float64(nd.count)
		if acc >= target {
			return nd.hi
		}
	}
	return nodes[len(nodes)-1].hi
}

// spanOf returns the leaf-value range [lo, hi] covered by node id.
func (q *QDigest) spanOf(id uint64) (uint64, uint64) {
	level := uint8(0)
	for i := id; i > 1; i /= 2 {
		level++
	}
	depthBelow := q.logU - level
	firstLeaf := id << depthBelow
	lastLeaf := firstLeaf + (uint64(1) << depthBelow) - 1
	base := uint64(1) << q.logU
	return firstLeaf - base, lastLeaf - base
}

// Merge adds another q-digest's counters into q and recompresses. This is
// the sensor-tree aggregation path: error bounds add, space stays O(k).
func (q *QDigest) Merge(other *QDigest) error {
	if other == nil || q.logU != other.logU || q.k != other.k {
		return core.ErrIncompatible
	}
	for id, c := range other.counts {
		q.counts[id] += c
	}
	q.n += other.n
	q.Compress()
	return nil
}

// Count returns the total inserted weight.
func (q *QDigest) Count() uint64 { return q.n }

// Reset returns the digest to its freshly-constructed state, reusing the
// node map's allocation.
func (q *QDigest) Reset() {
	clear(q.counts)
	q.n = 0
}

// Nodes returns the number of stored tree nodes.
func (q *QDigest) Nodes() int { return len(q.counts) }

// Bytes approximates the footprint.
func (q *QDigest) Bytes() int { return len(q.counts)*16 + 32 }
