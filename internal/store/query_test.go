package store

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// fourFamilyStore returns a store with one metric per synopsis family and
// a deterministic dataset across keys k0..k<keys-1>, times [0, span).
func fourFamilyStore(t testing.TB, cfg Config, keys int, span int64) *Store {
	t.Helper()
	st := mustStore(t, cfg)
	hll, _ := NewDistinctProto(12, 7)
	cm, _ := NewFreqProto(512, 4, 7)
	topk, _ := NewTopKProto(32)
	qd, _ := NewQuantileProto(16, 64)
	for name, p := range map[string]Prototype{"uniq": hll, "hits": cm, "top": topk, "lat": qd} {
		if err := st.RegisterMetric(name, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < span; i++ {
		key := fmt.Sprintf("k%d", int(i)%keys)
		item := fmt.Sprintf("u%d", i%17)
		for _, obs := range []Observation{
			{Metric: "uniq", Key: key, Item: item, Time: i},
			{Metric: "hits", Key: key, Item: item, Value: 1 + uint64(i)%3, Time: i},
			{Metric: "top", Key: key, Item: item, Time: i},
			{Metric: "lat", Key: key, Value: uint64(i) % 1000, Time: i},
		} {
			if err := st.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

func TestQueryTypedAccessors(t *testing.T) {
	st := fourFamilyStore(t, Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}, 4, 400)
	res, err := st.Query(QueryRequest{
		Metrics: []string{"uniq", "hits", "top", "lat"},
		Key:     "k0",
		From:    0, To: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("cells %d, want 4", res.Len())
	}
	u, ok := res.At("uniq", "k0")
	if !ok || u.Family() != FamilyDistinct {
		t.Fatalf("uniq cell %v %v", ok, u.Family())
	}
	if got := u.Distinct(); got < 15 || got > 19 {
		t.Fatalf("distinct %d, want ~17", got)
	}
	h, _ := res.At("hits", "k0")
	if h.Family() != FamilyFreq {
		t.Fatalf("hits family %v", h.Family())
	}
	if h.Count("u0") == 0 {
		t.Fatal("freq count 0")
	}
	tk, _ := res.At("top", "k0")
	if tk.Family() != FamilyTopK {
		t.Fatalf("top family %v", tk.Family())
	}
	if top := tk.TopK(3); len(top) != 3 {
		t.Fatalf("topk %v", top)
	}
	if tk.Count("u0") == 0 {
		t.Fatal("topk count accessor 0")
	}
	l, _ := res.At("lat", "k0")
	if l.Family() != FamilyQuantile {
		t.Fatalf("lat family %v", l.Family())
	}
	// k0 sees values 0, 4, ..., 396, so the median sits near 198.
	if med := l.Quantile(0.5); med < 150 || med > 250 {
		t.Fatalf("median %d", med)
	}
	// Cross-family accessors answer zero values, not panics.
	if u.Count("u0") != 0 || u.Quantile(0.5) != 0 || u.TopK(1) != nil || h.Distinct() != 0 {
		t.Fatal("cross-family accessor leaked a value")
	}
	// Raw stays available as the escape hatch.
	if _, ok := u.Raw().(*Distinct); !ok {
		t.Fatalf("raw %T", u.Raw())
	}
}

// The batched multi-key gather must produce answers byte-identical to the
// point path: same prototypes, same slot visit order, same merge split.
func TestQueryBatchMatchesPointByteForByte(t *testing.T) {
	st := fourFamilyStore(t, Config{Shards: 8, BucketWidth: 10, RingBuckets: 64}, 16, 500)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	for _, metric := range []string{"uniq", "hits", "top", "lat"} {
		res, err := st.Query(QueryRequest{Metric: metric, Keys: keys, From: 0, To: 500})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Answers() {
			want, err := st.QueryPoint(metric, a.Key, 0, 499)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Raw(), want) {
				t.Fatalf("%s/%s: batched answer differs from point answer", metric, a.Key)
			}
		}
	}
}

// Aggregate answers must equal per-key query + CombineSnapshots in sorted
// key order, byte for byte — the contract the cluster parity test extends
// across nodes.
func TestQueryAggregateMatchesCombine(t *testing.T) {
	st := fourFamilyStore(t, Config{Shards: 8, BucketWidth: 10, RingBuckets: 64}, 8, 400)
	hll, _ := NewDistinctProto(12, 7)
	cm, _ := NewFreqProto(512, 4, 7)
	topk, _ := NewTopKProto(32)
	qd, _ := NewQuantileProto(16, 64)
	protos := map[string]Prototype{"uniq": hll, "hits": cm, "top": topk, "lat": qd}
	// Unsorted, with a duplicate: Normalize sorts and dedups.
	keys := []string{"k3", "k0", "k5", "k0", "k1"}
	for metric, proto := range protos {
		res, err := st.Query(QueryRequest{Metric: metric, Keys: keys, From: 0, To: 400, Aggregate: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 || !res.Answers()[0].Aggregate {
			t.Fatalf("aggregate cells %d", res.Len())
		}
		var parts []Synopsis
		for _, key := range []string{"k0", "k1", "k3", "k5"} { // sorted, deduped
			syn, err := st.QueryPoint(metric, key, 0, 399)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, syn)
		}
		want, err := CombineSnapshots(proto, parts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Raw(), want) {
			t.Fatalf("%s: aggregate differs from per-key + CombineSnapshots", metric)
		}
	}
}

func TestQueryRangeHalfOpen(t *testing.T) {
	st := mustStore(t, Config{Shards: 2, BucketWidth: 10, RingBuckets: 32})
	cm, _ := NewFreqProto(64, 2, 1)
	if err := st.RegisterMetric("hits", cm); err != nil {
		t.Fatal(err)
	}
	// One observation per bucket at times 5, 15, 25.
	for _, ts := range []int64{5, 15, 25} {
		if err := st.Observe(Observation{Metric: "hits", Key: "k", Item: "x", Value: 1, Time: ts}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		from, to int64
		want     uint64
	}{
		{0, 10, 1},  // [0,10) sees only bucket 0
		{0, 11, 2},  // crossing into bucket 1 exposes it (bucket granularity)
		{10, 20, 1}, // bucket 1 alone
		{0, 30, 3},  // everything
		{30, 40, 0}, // beyond the data
	}
	for _, tc := range cases {
		res, err := st.Query(QueryRequest{Metric: "hits", Key: "k", From: tc.from, To: tc.to})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Count("x"); got != tc.want {
			t.Fatalf("[%d,%d): count %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
	// An empty range is a request error, matching from > to on the point path.
	if _, err := st.Query(QueryRequest{Metric: "hits", Key: "k", From: 10, To: 10}); err == nil {
		t.Fatal("empty range accepted")
	}
	// Unknown metrics carry the sentinel.
	if _, err := st.Query(QueryRequest{Metric: "nope", Key: "k", From: 0, To: 10}); !errors.Is(err, ErrUnknownMetric) {
		t.Fatalf("unknown metric error: %v", err)
	}
	if _, err := st.QueryPoint("nope", "k", 0, 9); !errors.Is(err, ErrUnknownMetric) {
		t.Fatal("point path lost the sentinel")
	}
}

func TestQueryAllKeys(t *testing.T) {
	st := fourFamilyStore(t, Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}, 6, 300)
	res, err := st.Query(QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Fatalf("cells %d, want 6", res.Len())
	}
	// Answers come back in sorted key order.
	for i, a := range res.Answers() {
		if want := fmt.Sprintf("k%d", i); a.Key != want {
			t.Fatalf("cell %d key %s, want %s", i, a.Key, want)
		}
		if a.Items() == 0 {
			t.Fatalf("cell %s empty", a.Key)
		}
	}
}

// A hot (splayed) key inside a batched request takes the settle+gather
// path and still answers exactly what a point query answers.
func TestQueryBatchWithHotKeys(t *testing.T) {
	st := mustStore(t, Config{
		Shards: 8, BucketWidth: 10, RingBuckets: 64,
		HotKey: HotKeyConfig{Replicas: 4, EpochWrites: 128, PromotePct: 10, SampleEvery: 1, BatchWrites: 16},
	})
	hll, _ := NewDistinctProto(12, 7)
	if err := st.RegisterMetric("uniq", hll); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		key := "hot"
		if i%4 == 3 {
			key = fmt.Sprintf("cold%d", i%16)
		}
		if err := st.Observe(Observation{Metric: "uniq", Key: key, Item: fmt.Sprintf("u%d", i%900), Time: int64(i / 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().HotKeys == 0 {
		t.Skip("hot key never promoted under this schedule")
	}
	keys := []string{"hot", "cold3", "cold7", "cold11"}
	res, err := st.Query(QueryRequest{Metric: "uniq", Keys: keys, From: 0, To: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers() {
		want, err := st.QueryPoint("uniq", a.Key, 0, 999)
		if err != nil {
			t.Fatal(err)
		}
		wd := want.(*Distinct).Estimate()
		if got := float64(a.Distinct()); got < wd-1 || got > wd+1 {
			t.Fatalf("%s: batched %f vs point %f", a.Key, got, wd)
		}
	}
}

func TestQueryRequestNormalize(t *testing.T) {
	req, err := QueryRequest{Metric: "m", Keys: []string{"b", "a", "b"}, From: 0, To: 10}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Metrics) != 1 || req.Metrics[0] != "m" || req.Metric != "" {
		t.Fatalf("metrics %v / %q", req.Metrics, req.Metric)
	}
	if len(req.Keys) != 2 || req.Keys[0] != "a" || req.Keys[1] != "b" {
		t.Fatalf("keys %v", req.Keys)
	}
	// Idempotent.
	again, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, again) {
		t.Fatalf("normalize not idempotent: %+v vs %+v", req, again)
	}
	// Duplicate metrics dedup preserving order.
	req, err = QueryRequest{Metrics: []string{"b", "a", "b"}, Key: "k", From: 0, To: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Metrics) != 2 || req.Metrics[0] != "b" || req.Metrics[1] != "a" {
		t.Fatalf("metrics %v", req.Metrics)
	}
	if _, err := (QueryRequest{Metric: "m", Key: "k", From: 5, To: 5}).Normalize(); err == nil {
		t.Fatal("empty range normalized")
	}
}

// The batched path must not regress single-key query latency: a one-key
// Query takes the same inline single-shard gather the point path always
// took. Compare with BenchmarkQuerySingleKeyPoint.
func BenchmarkQuerySingleKeyTyped(b *testing.B) {
	st := fourFamilyStore(b, Config{Shards: 8, BucketWidth: 10, RingBuckets: 64}, 16, 500)
	req := QueryRequest{Metric: "uniq", Key: "k3", From: 0, To: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuerySingleKeyPoint(b *testing.B) {
	st := fourFamilyStore(b, Config{Shards: 8, BucketWidth: 10, RingBuckets: 64}, 16, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.QueryPoint("uniq", "k3", 0, 499); err != nil {
			b.Fatal(err)
		}
	}
}

// One batched 16-key request vs 16 point queries — the lock round-trip
// amortization the serving API exists for.
func BenchmarkQueryMultiKeyBatched(b *testing.B) {
	st := fourFamilyStore(b, Config{Shards: 8, BucketWidth: 10, RingBuckets: 64}, 16, 500)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	req := QueryRequest{Metric: "uniq", Keys: keys, From: 0, To: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryMultiKeyPointLoop(b *testing.B) {
	st := fourFamilyStore(b, Config{Shards: 8, BucketWidth: 10, RingBuckets: 64}, 16, 500)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, key := range keys {
			if _, err := st.QueryPoint("uniq", key, 0, 499); err != nil {
				b.Fatal(err)
			}
		}
	}
}
