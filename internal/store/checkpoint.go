// checkpoint.go is the store's snapshot half of "snapshot + log-suffix
// replay": WriteCheckpoint serializes every resident bucket synopsis
// into a manifest + data file pair, RestoreCheckpoint rehydrates an
// empty store from it, and the manifest carries the log offsets the
// snapshot covers so recovery replays only the suffix past them.
//
// Format. checkpoint.dat is a flat sequence of CRC-framed records, one
// per (series, bucket):
//
//	record  [4]payload len  [4]crc32(payload)  [payload]
//	payload uvarint metric len, metric, uvarint key len, key,
//	        uvarint bucket index, uvarint synopsis len, synopsis bytes
//
// where the synopsis bytes come from the adapter's MarshalBinary (see
// synopsis.go). manifest.json names the store geometry the data was
// written under, the per-partition log offsets it covers, the record
// count and the data file's size and CRC — restore refuses a manifest
// that disagrees with the data file or the restoring store's geometry,
// because a checkpoint replayed into the wrong bucketing would merge
// observations into the wrong time ranges silently.
//
// Both files are written to a temp name and renamed into place, data
// before manifest, so a crash mid-checkpoint leaves either the previous
// complete pair or a missing manifest — never a manifest pointing at a
// half-written data file.
//
// Writers must be quiesced: WriteCheckpoint walks the shards under
// their locks but takes no global write fence, and every caller in the
// tree (node recovery handoff, frozen batch views, demo shutdown paths)
// checkpoints only stores that nothing is writing to.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
)

const (
	checkpointVersion  = 1
	manifestName       = "manifest.json"
	checkpointDataName = "checkpoint.dat"
)

// CheckpointManifest is the JSON sidecar describing one checkpoint.
type CheckpointManifest struct {
	Version     int    `json:"version"`
	BucketWidth int64  `json:"bucket_width"`
	RingBuckets int    `json:"ring_buckets"`
	Records     uint64 `json:"records"`
	DataBytes   int64  `json:"data_bytes"`
	DataCRC     uint32 `json:"data_crc"`
	// Offsets are the per-partition log offsets (exclusive) the snapshot
	// covers: recovery replays [Offsets[pid], end) on top of the restore.
	Offsets []uint64 `json:"offsets"`
	// Partitions, when non-nil, restricts the snapshot to an owned
	// subset (a cluster node's assignment). A restorer whose assignment
	// differs must not use the checkpoint: it would double-count moved
	// partitions and miss new ones.
	Partitions []int `json:"partitions,omitempty"`
	// Floors are the per-partition lower offset fences in force when the
	// snapshot was written (nil = no fence): the snapshot covers
	// [Floors[pid], Offsets[pid]). A restorer whose fence has moved must
	// not use the snapshot — it bakes in history below the new fence
	// that no replay can subtract.
	Floors []uint64 `json:"floors,omitempty"`
}

// CheckpointMeta is the caller-supplied log position a checkpoint is
// stamped with (see the matching CheckpointManifest fields).
type CheckpointMeta struct {
	Offsets    []uint64
	Partitions []int
	Floors     []uint64
}

// CheckpointInfo summarizes a written checkpoint.
type CheckpointInfo struct {
	Records uint64
	Bytes   int64
}

// quiesceHot retires every hot route so replica sub-entries drain into
// their home series — after it, every resident bucket lives on its home
// shard under its real key, which is the only layout the checkpoint
// format records. Query answers are unchanged (demotion merges, never
// drops) and the keys re-promote from live traffic after restore.
func (s *Store) quiesceHot() {
	s.FlushHot()
	tab := s.hot.Load()
	if tab == nil {
		return
	}
	for _, r := range tab.m {
		s.demote(r)
	}
}

// WriteCheckpoint snapshots every resident bucket of st into dir as a
// manifest + data file pair, stamped with the log position in meta (see
// CheckpointManifest). The store must be quiesced — no concurrent
// writers — and every resident synopsis must implement
// encoding.BinaryMarshaler (all four built-in families do).
func WriteCheckpoint(st *Store, dir string, meta CheckpointMeta) (CheckpointInfo, error) {
	var info CheckpointInfo
	if st == nil {
		return info, core.Errf("WriteCheckpoint", "store", "must be non-nil")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return info, err
	}
	st.quiesceHot()
	// Seal history now, not just on restore: a store that has just been
	// checkpointed and a store restored from that checkpoint then answer
	// every query identically, including order-sensitive quantile merges
	// (see sealHistory).
	st.sealHistory()

	tmp, err := os.CreateTemp(dir, checkpointDataName+".tmp*")
	if err != nil {
		return info, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename

	crc := crc32.NewIEEE()
	var dataBytes int64
	var records uint64
	var buf []byte
	writeErr := func() error {
		for _, sh := range st.shards {
			sh.mu.RLock()
			for k, e := range sh.entries {
				if e.replica {
					// quiesceHot drained every route; a replica here means
					// a writer raced the checkpoint, which the quiescence
					// contract forbids.
					sh.mu.RUnlock()
					return core.Errf("WriteCheckpoint", "store", "replica entry %q/%q present; store not quiesced", k.metric, k.key)
				}
				for i := range e.slots {
					sl := &e.slots[i]
					if sl.idx < 0 || sl.syn == nil {
						continue
					}
					m, ok := sl.syn.(interface{ MarshalBinary() ([]byte, error) })
					if !ok {
						sh.mu.RUnlock()
						return core.Errf("WriteCheckpoint", "synopsis", "%T of metric %q has no binary codec", sl.syn, k.metric)
					}
					sb, err := m.MarshalBinary()
					if err != nil {
						sh.mu.RUnlock()
						return err
					}
					buf = appendCheckpointRecord(buf[:0], k, sl.idx, sb)
					if _, err := tmp.Write(buf); err != nil {
						sh.mu.RUnlock()
						return err
					}
					crc.Write(buf)
					dataBytes += int64(len(buf))
					records++
				}
			}
			sh.mu.RUnlock()
		}
		return nil
	}()
	if writeErr != nil {
		tmp.Close()
		return info, writeErr
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return info, err
	}
	if err := tmp.Close(); err != nil {
		return info, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, checkpointDataName)); err != nil {
		return info, err
	}

	man := CheckpointManifest{
		Version:     checkpointVersion,
		BucketWidth: st.cfg.BucketWidth,
		RingBuckets: st.cfg.RingBuckets,
		Records:     records,
		DataBytes:   dataBytes,
		DataCRC:     crc.Sum32(),
		Offsets:     append([]uint64(nil), meta.Offsets...),
		Partitions:  append([]int(nil), meta.Partitions...),
		Floors:      append([]uint64(nil), meta.Floors...),
	}
	if err := writeManifest(dir, man); err != nil {
		return info, err
	}
	info = CheckpointInfo{Records: records, Bytes: dataBytes}
	st.ckptRecords.Store(records)
	st.ckptBytes.Store(uint64(dataBytes))
	return info, nil
}

func writeManifest(dir string, man CheckpointManifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestName))
}

// appendCheckpointRecord frames one (series, bucket, synopsis) record.
func appendCheckpointRecord(buf []byte, k entryKey, bkt int64, syn []byte) []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(len(k.metric)))
	payload = append(payload, k.metric...)
	payload = binary.AppendUvarint(payload, uint64(len(k.key)))
	payload = append(payload, k.key...)
	payload = binary.AppendUvarint(payload, uint64(bkt))
	payload = binary.AppendUvarint(payload, uint64(len(syn)))
	payload = append(payload, syn...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// RemoveCheckpoint deletes dir's checkpoint pair, manifest first — a
// crash mid-remove then leaves data without a manifest (ignored by every
// reader) rather than a manifest pointing at missing data. Absent files
// are not an error.
func RemoveCheckpoint(dir string) error {
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.Remove(filepath.Join(dir, checkpointDataName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// ReadCheckpointManifest loads and sanity-checks dir's manifest without
// touching the data file — the cheap compatibility probe recovery runs
// before deciding whether to restore or fall back to a full replay.
func ReadCheckpointManifest(dir string) (*CheckpointManifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var man CheckpointManifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("store: checkpoint manifest: %w", err)
	}
	if man.Version != checkpointVersion {
		return nil, fmt.Errorf("store: checkpoint manifest version %d: %w", man.Version, core.ErrIncompatible)
	}
	return &man, nil
}

// RestoreCheckpoint rehydrates st — which must be empty, with every
// metric named by the checkpoint already registered — from dir, and
// returns the manifest (whose Offsets tell the caller where to resume
// the log replay). Geometry mismatches and any corruption (size, CRC,
// record framing, synopsis decode) are errors; on error the store may
// hold partial state and must be discarded, which is cheap because the
// caller builds it fresh for exactly this call.
func RestoreCheckpoint(st *Store, dir string) (*CheckpointManifest, error) {
	if st == nil {
		return nil, core.Errf("RestoreCheckpoint", "store", "must be non-nil")
	}
	man, err := ReadCheckpointManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.BucketWidth != st.cfg.BucketWidth || man.RingBuckets != st.cfg.RingBuckets {
		return nil, fmt.Errorf("store: checkpoint geometry %d/%d vs store %d/%d: %w",
			man.BucketWidth, man.RingBuckets, st.cfg.BucketWidth, st.cfg.RingBuckets, core.ErrIncompatible)
	}
	if st.observed.Load() > 0 || st.Stats().Entries > 0 {
		return nil, core.Errf("RestoreCheckpoint", "store", "must be empty")
	}
	data, err := os.ReadFile(filepath.Join(dir, checkpointDataName))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != man.DataBytes || crc32.ChecksumIEEE(data) != man.DataCRC {
		return nil, fmt.Errorf("store: checkpoint data file does not match manifest: %w", core.ErrCorrupt)
	}
	var records uint64
	pos := 0
	for pos < len(data) {
		if pos+8 > len(data) {
			return nil, core.ErrCorrupt
		}
		plen := int(binary.LittleEndian.Uint32(data[pos:]))
		wantCRC := binary.LittleEndian.Uint32(data[pos+4:])
		pos += 8
		if plen < 0 || pos+plen > len(data) {
			return nil, core.ErrCorrupt
		}
		payload := data[pos : pos+plen]
		pos += plen
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, core.ErrCorrupt
		}
		if err := st.restoreRecord(payload); err != nil {
			return nil, err
		}
		records++
	}
	if records != man.Records {
		return nil, fmt.Errorf("store: checkpoint has %d records, manifest says %d: %w", records, man.Records, core.ErrCorrupt)
	}
	st.sealHistory()
	st.restored.Store(records)
	return man, nil
}

// restoreRecord decodes one checkpoint record and installs the bucket.
func (s *Store) restoreRecord(payload []byte) error {
	metric, rest, err := cutUvarintString(payload)
	if err != nil {
		return err
	}
	key, rest, err := cutUvarintString(rest)
	if err != nil {
		return err
	}
	bkt, n := binary.Uvarint(rest)
	if n <= 0 {
		return core.ErrCorrupt
	}
	rest = rest[n:]
	synBytes, rest, err := cutUvarintBytes(rest)
	if err != nil || len(rest) != 0 {
		return core.ErrCorrupt
	}
	proto, err := s.proto(metric)
	if err != nil {
		return err
	}
	syn := proto()
	u, ok := syn.(interface{ UnmarshalBinary([]byte) error })
	if !ok {
		return core.Errf("RestoreCheckpoint", "synopsis", "%T of metric %q has no binary codec", syn, metric)
	}
	if err := u.UnmarshalBinary(synBytes); err != nil {
		return fmt.Errorf("store: restore %q/%q bucket %d: %w", metric, key, bkt, err)
	}

	k := entryKey{metric: metric, key: key}
	sh := s.shards[s.shardIndex(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.getOrCreate(k, s.cfg.RingBuckets, false)
	sl := e.slotFor(int64(bkt))
	if sl.idx >= 0 {
		return fmt.Errorf("store: checkpoint buckets %d and %d of %q/%q collide in the ring: %w", sl.idx, bkt, metric, key, core.ErrCorrupt)
	}
	sl.idx = int64(bkt)
	sl.syn = syn
	sl.bytes = syn.Bytes()
	e.bytes += sl.bytes
	sh.bytes += sl.bytes
	if int64(bkt) > e.newest {
		e.newest = int64(bkt)
	}
	// The exact stream time of the bucket's last write is not recorded;
	// anchor recency at the bucket's end so idle eviction never reaps a
	// just-restored entry before live traffic resumes.
	if lw := (int64(bkt)+1)*s.cfg.BucketWidth - 1; lw > e.lastWrite {
		e.lastWrite = lw
		if lw > sh.maxTime {
			sh.maxTime = lw
		}
	}
	return nil
}

// sealHistory seals every resident bucket, the newest included. Sealing
// is always safe — it only forces the next write to that bucket to
// copy-on-write clone, exactly as advance arranges for history buckets.
// It runs on both sides of a checkpoint: on write it erases the
// copy-on-write and hot-key-drain stragglers a live store accumulates,
// and on restore it puts the freshly installed entries in the same
// all-sealed state. The uniform pattern matters because the query path
// merges open buckets under the shard lock and sealed ones after it —
// for an order-sensitive synopsis (the q-digest compresses as it merges)
// a different open/sealed split yields a different, if equally valid,
// answer; with both sides all-sealed, a checkpointed store and its
// restored copy answer every query identically.
func (s *Store) sealHistory() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			for i := range e.slots {
				sl := &e.slots[i]
				if sl.idx >= 0 && sl.syn != nil {
					sl.sealed = true
				}
			}
		}
		sh.mu.Unlock()
	}
}

func cutUvarintString(b []byte) (string, []byte, error) {
	s, rest, err := cutUvarintBytes(b)
	return string(s), rest, err
}

func cutUvarintBytes(b []byte) ([]byte, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, core.ErrCorrupt
	}
	return b[w : w+int(n)], b[w+int(n):], nil
}
