package store

import (
	"fmt"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/mqlog"
)

func mustStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func registerUniques(t *testing.T, st *Store) {
	t.Helper()
	proto, err := NewDistinctProto(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterMetric("uniques", proto); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidationAndDefaults(t *testing.T) {
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := New(Config{MaxShardBytes: -1}); err == nil {
		t.Fatal("negative byte budget accepted")
	}
	if _, err := New(Config{MaxIdle: -1}); err == nil {
		t.Fatal("negative idle age accepted")
	}
	st := mustStore(t, Config{Shards: 5})
	if st.Shards() != 8 {
		t.Fatalf("shards %d, want next power of two 8", st.Shards())
	}
	if st.BucketWidth() != 60 {
		t.Fatalf("default bucket width %d", st.BucketWidth())
	}
}

func TestRegisterMetricValidation(t *testing.T) {
	st := mustStore(t, Config{})
	proto, _ := NewDistinctProto(10, 1)
	if err := st.RegisterMetric("", proto); err == nil {
		t.Fatal("empty metric name accepted")
	}
	if err := st.RegisterMetric("m", nil); err == nil {
		t.Fatal("nil prototype accepted")
	}
	if err := st.RegisterMetric("m", proto); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterMetric("m", proto); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := st.Observe(Observation{Metric: "nope", Time: 0}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := st.QueryPoint("nope", "k", 0, 1); err == nil {
		t.Fatal("query of unknown metric accepted")
	}
}

// The store's answer over a range must match a single sketch fed the same
// stream directly: bucketing + merging adds no error beyond the sketch's.
func TestQueryMatchesDirectSketch(t *testing.T) {
	st := mustStore(t, Config{Shards: 4, BucketWidth: 10, RingBuckets: 100})
	registerUniques(t, st)
	direct, _ := cardinality.NewHyperLogLog(12, 42)
	for i := 0; i < 5000; i++ {
		item := fmt.Sprintf("user%d", i%1300)
		ts := int64(i % 400) // spans 40 buckets
		if err := st.Observe(Observation{Metric: "uniques", Key: "page", Item: item, Value: 1, Time: ts}); err != nil {
			t.Fatal(err)
		}
		direct.UpdateString(item)
	}
	syn, err := st.QueryPoint("uniques", "page", 0, 399)
	if err != nil {
		t.Fatal(err)
	}
	got := syn.(*Distinct).Estimate()
	want := direct.Estimate()
	if got != want {
		t.Fatalf("merged estimate %f != direct estimate %f", got, want)
	}
}

func TestQueryRangeSelectsBuckets(t *testing.T) {
	st := mustStore(t, Config{Shards: 1, BucketWidth: 10, RingBuckets: 100})
	registerUniques(t, st)
	// One unique item per bucket, buckets 0..9.
	for b := 0; b < 10; b++ {
		obs := Observation{Metric: "uniques", Key: "k", Item: fmt.Sprintf("i%d", b), Time: int64(b * 10)}
		if err := st.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		from, to int64
		want     float64
	}{
		{0, 99, 10},
		{0, 9, 1},
		{30, 59, 3},
		{90, 1000, 1},
		{500, 900, 0},
	} {
		syn, err := st.QueryPoint("uniques", "k", tc.from, tc.to)
		if err != nil {
			t.Fatal(err)
		}
		if got := syn.(*Distinct).Estimate(); got < tc.want-0.5 || got > tc.want+0.5 {
			t.Fatalf("range [%d,%d]: estimate %f, want ~%f", tc.from, tc.to, got, tc.want)
		}
	}
	if _, err := st.QueryPoint("uniques", "k", 50, 40); err == nil {
		t.Fatal("inverted range accepted")
	}
	// A never-written series answers empty, not an error.
	syn, err := st.QueryPoint("uniques", "ghost", 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := syn.(*Distinct).Estimate(); got != 0 {
		t.Fatalf("ghost series estimate %f", got)
	}
}

// Bucket expiry mirrors the mqlog partition-retention tests: the ring
// keeps the last RingBuckets buckets, older ones are truncated, and
// writes behind the window are dropped and counted.
func TestRingRetentionExpiresOldBuckets(t *testing.T) {
	st := mustStore(t, Config{Shards: 1, BucketWidth: 10, RingBuckets: 4})
	registerUniques(t, st)
	for b := 0; b < 10; b++ {
		obs := Observation{Metric: "uniques", Key: "k", Item: fmt.Sprintf("i%d", b), Time: int64(b * 10)}
		if err := st.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	// Buckets 0..5 rotated out; only 6..9 retained.
	syn, _ := st.QueryPoint("uniques", "k", 0, 99)
	if got := syn.(*Distinct).Estimate(); got < 3.5 || got > 4.5 {
		t.Fatalf("retained estimate %f, want ~4", got)
	}
	syn, _ = st.QueryPoint("uniques", "k", 0, 59)
	if got := syn.(*Distinct).Estimate(); got != 0 {
		t.Fatalf("expired range estimate %f, want 0", got)
	}
	// A write more than the ring behind the newest bucket is dropped.
	if err := st.Observe(Observation{Metric: "uniques", Key: "k", Item: "late", Time: 0}); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().DroppedLate; got != 1 {
		t.Fatalf("dropped-late count %d, want 1", got)
	}
	// A late write still inside the window is applied (copy-on-write path:
	// bucket 6 was sealed when time advanced to buckets 7..9).
	if err := st.Observe(Observation{Metric: "uniques", Key: "k", Item: "late-ok", Time: 60}); err != nil {
		t.Fatal(err)
	}
	syn, _ = st.QueryPoint("uniques", "k", 60, 69)
	if got := syn.(*Distinct).Estimate(); got < 1.5 || got > 2.5 {
		t.Fatalf("bucket 6 after late write: estimate %f, want ~2", got)
	}
}

// A large forward jump in stream time must expire everything behind the
// new window immediately: queries may never serve history the write path
// would reject, and the expired bytes must come off the shard accounting.
func TestTimeJumpExpiresStaleBuckets(t *testing.T) {
	st := mustStore(t, Config{Shards: 1, BucketWidth: 10, RingBuckets: 4})
	registerUniques(t, st)
	for b := 0; b < 3; b++ {
		st.Observe(Observation{Metric: "uniques", Key: "k", Item: fmt.Sprintf("i%d", b), Time: int64(b * 10)})
	}
	bytesBefore := st.Stats().Bytes
	if bytesBefore == 0 {
		t.Fatal("no bytes accounted before jump")
	}
	// Jump far past the ring: buckets 0..2 are all behind the new window.
	st.Observe(Observation{Metric: "uniques", Key: "k", Item: "new", Time: 10_000})
	syn, _ := st.QueryPoint("uniques", "k", 0, 29)
	if got := syn.(*Distinct).Estimate(); got != 0 {
		t.Fatalf("expired history still served: estimate %f", got)
	}
	syn, _ = st.QueryPoint("uniques", "k", 0, 20_000)
	if got := syn.(*Distinct).Estimate(); got < 0.5 || got > 1.5 {
		t.Fatalf("post-jump estimate %f, want ~1", got)
	}
	// Three of the four ring slots were cleared; accounting must shrink.
	if after := st.Stats().Bytes; after >= bytesBefore {
		t.Fatalf("bytes %d not reduced from %d after expiry", after, bytesBefore)
	}
}

func TestSizeEvictionHonorsByteBudget(t *testing.T) {
	// An HLL at precision 12 is ~4KB, so a 20KB budget holds only a few
	// entries per shard; 50 keys on one shard must evict the cold ones.
	st := mustStore(t, Config{Shards: 1, BucketWidth: 10, RingBuckets: 4, MaxShardBytes: 20 << 10})
	registerUniques(t, st)
	for i := 0; i < 50; i++ {
		obs := Observation{Metric: "uniques", Key: fmt.Sprintf("k%d", i), Item: "x", Time: 0}
		if err := st.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Bytes > 20<<10 {
		t.Fatalf("shard bytes %d exceed budget", stats.Bytes)
	}
	if stats.EvictedSize == 0 {
		t.Fatal("no size evictions recorded")
	}
	if stats.Entries+int(stats.EvictedSize) != 50 {
		t.Fatalf("entries %d + evicted %d != 50", stats.Entries, stats.EvictedSize)
	}
	// The most recently written key survived; the coldest was evicted.
	if keys := st.Keys("uniques"); len(keys) != stats.Entries {
		t.Fatalf("Keys returned %d, stats say %d", len(keys), stats.Entries)
	}
	syn, _ := st.QueryPoint("uniques", "k49", 0, 9)
	if syn.(*Distinct).Estimate() == 0 {
		t.Fatal("hottest key evicted")
	}
	syn, _ = st.QueryPoint("uniques", "k0", 0, 9)
	if syn.(*Distinct).Estimate() != 0 {
		t.Fatal("coldest key survived a full budget")
	}
}

func TestIdleEvictionReapsStaleEntries(t *testing.T) {
	st := mustStore(t, Config{Shards: 1, BucketWidth: 10, RingBuckets: 8, MaxIdle: 100})
	registerUniques(t, st)
	if err := st.Observe(Observation{Metric: "uniques", Key: "stale", Item: "x", Time: 0}); err != nil {
		t.Fatal(err)
	}
	// Advancing the shard clock past MaxIdle reaps the stale entry.
	if err := st.Observe(Observation{Metric: "uniques", Key: "live", Item: "y", Time: 150}); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.EvictedIdle != 1 {
		t.Fatalf("idle evictions %d, want 1", stats.EvictedIdle)
	}
	if stats.Entries != 1 {
		t.Fatalf("entries %d, want 1", stats.Entries)
	}
	syn, _ := st.QueryPoint("uniques", "stale", 0, 200)
	if syn.(*Distinct).Estimate() != 0 {
		t.Fatal("stale entry still answering")
	}
}

func TestStatsCounters(t *testing.T) {
	st := mustStore(t, Config{Shards: 2, BucketWidth: 10, RingBuckets: 4})
	registerUniques(t, st)
	for i := 0; i < 10; i++ {
		st.Observe(Observation{Metric: "uniques", Key: "k", Item: fmt.Sprintf("i%d", i), Time: int64(i)})
	}
	st.QueryPoint("uniques", "k", 0, 9)
	st.QueryPoint("uniques", "k", 0, 9)
	stats := st.Stats()
	if stats.Observed != 10 || stats.Queries != 2 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Entries != 1 || stats.Bytes <= 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestAllSynopsisFamiliesThroughStore(t *testing.T) {
	st := mustStore(t, Config{Shards: 4, BucketWidth: 100, RingBuckets: 10})
	hll, _ := NewDistinctProto(12, 7)
	freq, _ := NewFreqProto(1024, 4, 7)
	topk, _ := NewTopKProto(16)
	quant, _ := NewQuantileProto(16, 64)
	for name, p := range map[string]Prototype{
		"uniq": hll, "hits": freq, "top": topk, "lat": quant,
	} {
		if err := st.RegisterMetric(name, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		item := fmt.Sprintf("it%d", i%100)
		ts := int64(i % 500)
		st.Observe(Observation{Metric: "uniq", Key: "k", Item: item, Time: ts})
		st.Observe(Observation{Metric: "hits", Key: "k", Item: item, Value: 2, Time: ts})
		st.Observe(Observation{Metric: "top", Key: "k", Item: fmt.Sprintf("it%d", i%7), Time: ts})
		st.Observe(Observation{Metric: "lat", Key: "k", Value: uint64(i % 1000), Time: ts})
	}
	if syn, _ := st.QueryPoint("uniq", "k", 0, 499); syn.(*Distinct).Estimate() < 90 {
		t.Fatalf("uniq estimate %f", syn.(*Distinct).Estimate())
	}
	if syn, _ := st.QueryPoint("hits", "k", 0, 499); syn.(*Freq).Count("it0") < 60 {
		t.Fatalf("hits count %d", syn.(*Freq).Count("it0"))
	}
	syn, _ := st.QueryPoint("top", "k", 0, 499)
	top := syn.(*TopK).Top(7)
	if len(top) != 7 {
		t.Fatalf("topk size %d", len(top))
	}
	syn, _ = st.QueryPoint("lat", "k", 0, 499)
	p50 := syn.(*Quantiles).Quantile(0.5)
	if p50 < 300 || p50 > 700 {
		t.Fatalf("p50 %d out of plausible range", p50)
	}
	// Merging across metrics must be rejected, not silently absorbed.
	a, _ := st.QueryPoint("uniq", "k", 0, 499)
	b, _ := st.QueryPoint("lat", "k", 0, 499)
	if err := a.Merge(b); err == nil {
		t.Fatal("cross-family merge accepted")
	}
	if got := len(st.Metrics()); got != 4 {
		t.Fatalf("metrics %d", got)
	}
}

func TestObservationCodecRoundTrip(t *testing.T) {
	obs := Observation{Metric: "m", Key: "key", Item: "item", Value: 12345, Time: 67890}
	got, err := DecodeObservation(EncodeObservation(obs))
	if err != nil {
		t.Fatal(err)
	}
	if got != obs {
		t.Fatalf("round trip %+v != %+v", got, obs)
	}
	empty := Observation{}
	if got, err := DecodeObservation(EncodeObservation(empty)); err != nil || got != empty {
		t.Fatalf("empty round trip: %+v, %v", got, err)
	}
	for _, bad := range [][]byte{nil, {0xff}, {3, 'a'}, EncodeObservation(obs)[:5]} {
		if _, err := DecodeObservation(bad); err == nil {
			t.Fatalf("decoded corrupt input %v", bad)
		}
	}
}

// Speed layer and batch layer converge: a store fed live and a store
// rebuilt from the log's retained prefix answer identically.
func TestRebuildFromLogMatchesLiveStore(t *testing.T) {
	broker := mqlog.NewBroker()
	topic, err := broker.CreateTopic("events", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 4, BucketWidth: 10, RingBuckets: 100}
	live := mustStore(t, cfg)
	registerUniques(t, live)
	for i := 0; i < 2000; i++ {
		obs := Observation{
			Metric: "uniques",
			Key:    fmt.Sprintf("k%d", i%5),
			Item:   fmt.Sprintf("i%d", i%700),
			Time:   int64(i % 300),
		}
		topic.Produce(obs.Key, EncodeObservation(obs))
		if err := live.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	protos := map[string]Prototype{}
	hll, _ := NewDistinctProto(12, 42)
	protos["uniques"] = hll
	rebuilt, applied, err := Rebuild(cfg, protos, topic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2000 {
		t.Fatalf("applied %d, want 2000", applied)
	}
	for k := 0; k < 5; k++ {
		key := fmt.Sprintf("k%d", k)
		a, _ := live.QueryPoint("uniques", key, 0, 299)
		b, _ := rebuilt.QueryPoint("uniques", key, 0, 299)
		if a.(*Distinct).Estimate() != b.(*Distinct).Estimate() {
			t.Fatalf("key %s: live %f != rebuilt %f", key,
				a.(*Distinct).Estimate(), b.(*Distinct).Estimate())
		}
	}
}

// With retention on the topic, the rebuild covers exactly the retained
// suffix — the batch layer serves what the log still has.
func TestRebuildRespectsLogRetention(t *testing.T) {
	broker := mqlog.NewBroker()
	topic, _ := broker.CreateTopic("events", 1, 100)
	for i := 0; i < 250; i++ {
		obs := Observation{Metric: "uniques", Key: "k", Item: fmt.Sprintf("i%d", i), Time: 0}
		topic.Produce(obs.Key, EncodeObservation(obs))
	}
	hll, _ := NewDistinctProto(12, 42)
	st, applied, err := Rebuild(Config{Shards: 1, BucketWidth: 10, RingBuckets: 10},
		map[string]Prototype{"uniques": hll}, topic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 100 {
		t.Fatalf("applied %d, want the 100 retained messages", applied)
	}
	syn, _ := st.QueryPoint("uniques", "k", 0, 9)
	est := syn.(*Distinct).Estimate()
	if est < 95 || est > 105 {
		t.Fatalf("rebuilt estimate %f, want ~100", est)
	}
}
