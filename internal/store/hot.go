// hot.go is the store's hot-key mitigation: write combining plus
// splaying for skewed streams. Real-world key popularity is Zipfian (the
// tutorial's trending hashtags and heavy-hitter applications assume it),
// and under Zipf keys a sharded store's ingest flatlines because the
// hottest keys serialize on their home shard's lock — experiment T2.4's
// known limitation — while churning through bucket synopses faster than
// cold keys ever would.
//
// The fix leans on the one property every bucket synopsis already
// guarantees: merging synopses of split streams equals the synopsis of
// the unsplit stream (within the sketch's error bound). That makes a hot
// series safe to *splay*: spread its writes over R sub-entries
// (replicas) living on R distinct shards, each absorbing a fraction of
// the traffic into its own bucket ring, re-combined lazily — queries
// merge all replicas through the existing Synopsis.Merge path, and
// demotion drains the replicas back into the home entry. Cold entries
// never see any of this.
//
// Writes to a hot key are *combined* before they are applied: a writer
// claims a slot in the route's current batch with one atomic increment
// and copies in (item, value, time) — no lock, no hash, no map lookup —
// and whichever writer fills the last slot seals the batch and flushes
// all of it into the next replica ring in one shard-lock acquisition.
// The per-write ring bookkeeping (bucket advance, seal checks, byte
// accounting, recency touch) collapses into per-batch and per-bucket-run
// work, which is what makes a hot key *cheaper* per observation than a
// cold one instead of a serialization point.
//
// Lifecycle (the hot-entry state machine, see DESIGN.md):
//
//		cold --promotion--> hot/splayed --demotion--> cold (again)
//
//	  - Detection. Each shard samples its write traffic into a Space-Saving
//	    tracker (internal/frequency — the same summary the store serves as a
//	    TopK synopsis). Every EpochWrites writes the shard harvests the
//	    tracker: any key charged more than PromotePct percent of the epoch
//	    is promoted into an immutable hot table read lock-free (one atomic
//	    pointer load) by every Observe.
//	  - Splayed writes. Batches flush bucket-affine across the true
//	    replica shards (bucket index mod R-1, over shards[1:]), so each
//	    bucket's synopsis lives in exactly one recycling ring. The home
//	    entry keeps the key's pre-promotion history and receives diverted
//	    and drained data.
//	  - Demotion. When a home-shard epoch ends with the route's traffic
//	    since the previous epoch below the promotion threshold divided by
//	    DemoteHysteresis, the route enters draining (writers divert to the
//	    home path), its pending batch is flushed to the home entry, each
//	    replica ring is drained (merged bucket-by-bucket) into the home
//	    entry, and only then is the route unpublished — restoring the
//	    state an unsplayed store would hold. A route homed on a shard
//	    that went fully silent has no epoch of its own to judge it, so
//	    every OTHER shard's epoch roll runs a silence check: after
//	    DemoteHysteresis consecutive checks with zero traffic, the route
//	    demotes the same way.
//
// Consistency. Promotion moves no data. A batched write is visible to
// queries no later than the caller's next Query of that key: the query
// path seals and flushes the route's pending batch before gathering, so
// single-writer flows keep read-your-writes. Demotion marks the route
// draining first, so claimants divert to the home path; the sealed batch
// and any batch still in flight re-check the draining flag under their
// target shard's lock and divert to the home entry, so no observation is
// ever stranded in an unreachable ring. The drain itself runs under the
// hotRW write lock and unpublishes the route before releasing it, while
// queries that saw the route gather under the read lock and queries that
// did not see it read a home entry the drain has already completed — so
// a query can never observe a bucket twice, nor miss replica-resident
// history mid-demotion.
package store

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// HotKeyConfig tunes hot-key detection, write combining and splaying.
// The zero value disables the feature entirely (Replicas == 0): the
// store then runs the plain write path with no tracker and no hot-table
// cost beyond one nil check.
type HotKeyConfig struct {
	// Replicas is the number of sub-entries a hot key is splayed across,
	// clamped to the shard count; 0 disables hot-key handling, and a
	// clamped value below 2 disables it too (splaying inside one shard
	// buys nothing).
	Replicas int
	// EpochWrites is how many writes a shard absorbs per detection epoch
	// (default 1024). Smaller epochs react faster but promote on noisier
	// evidence.
	EpochWrites int
	// PromotePct promotes a key when it is charged more than this percent
	// of its home shard's epoch writes (default 10).
	PromotePct int
	// SampleEvery feeds every Nth write into the shard tracker (default
	// 16), bounding detection overhead on the cold write path; promotion
	// thresholds are scaled by the sampling rate.
	SampleEvery int
	// TrackerK is the number of Space-Saving counters per shard tracker
	// (default 16). It bounds how many distinct hot candidates one shard
	// can surface per epoch.
	TrackerK int
	// MaxHot caps simultaneously splayed keys across the store (default
	// 64) so the hot table stays small enough to scan cheaply.
	MaxHot int
	// DemoteHysteresis demotes a splayed key when an epoch's route
	// traffic falls below the promotion threshold divided by this factor
	// (default 8), so keys hovering near the threshold don't flap.
	DemoteHysteresis int
	// BatchWrites is the write-combining batch size (default 256): how
	// many observations of one hot key are claimed lock-free before a
	// single flush applies them to a replica ring. 1 disables combining
	// (every write flushes alone) without disabling splaying.
	BatchWrites int
}

func (h HotKeyConfig) withDefaults() HotKeyConfig {
	if h.Replicas <= 0 {
		return HotKeyConfig{} // disabled; the rest is irrelevant
	}
	if h.EpochWrites <= 0 {
		h.EpochWrites = 1024
	}
	if h.PromotePct <= 0 {
		h.PromotePct = 10
	}
	if h.SampleEvery <= 0 {
		h.SampleEvery = 16
	}
	if h.TrackerK <= 0 {
		h.TrackerK = 16
	}
	if h.MaxHot <= 0 {
		h.MaxHot = 64
	}
	if h.DemoteHysteresis <= 0 {
		h.DemoteHysteresis = 8
	}
	if h.BatchWrites <= 0 {
		h.BatchWrites = 256
	}
	return h
}

// validate sanity-checks the hot-key configuration at New time.
func (h HotKeyConfig) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Replicas", h.Replicas}, {"EpochWrites", h.EpochWrites},
		{"PromotePct", h.PromotePct}, {"SampleEvery", h.SampleEvery},
		{"TrackerK", h.TrackerK}, {"MaxHot", h.MaxHot},
		{"DemoteHysteresis", h.DemoteHysteresis}, {"BatchWrites", h.BatchWrites},
	} {
		if f.v < 0 {
			return core.Errf("Store", "HotKey."+f.name, "%d must be >= 0", f.v)
		}
	}
	if h.PromotePct > 100 {
		return core.Errf("Store", "HotKey.PromotePct", "%d must be <= 100", h.PromotePct)
	}
	return nil
}

// promoteSamples is the tracker count (in sampled writes) at which a key
// is promoted, rounding up so sampling can only raise the effective
// percentage, never collapse it toward zero.
func (h HotKeyConfig) promoteSamples() uint64 {
	denom := uint64(100) * uint64(h.SampleEvery)
	t := (uint64(h.EpochWrites)*uint64(h.PromotePct) + denom - 1) / denom
	if t == 0 {
		t = 1
	}
	return t
}

// demoteBelow is the per-epoch route write count under which a splayed
// key is demoted.
func (h HotKeyConfig) demoteBelow() uint64 {
	t := uint64(h.EpochWrites) * uint64(h.PromotePct) / 100 / uint64(h.DemoteHysteresis)
	if t == 0 {
		t = 1
	}
	return t
}

// HotKey names one currently-splayed series, for observability and tests.
type HotKey struct {
	Metric string
	Key    string
}

// hotObs is one buffered observation of a hot key; the metric and key are
// the route's, so only the payload is copied.
type hotObs struct {
	item  string
	value uint64
	time  int64
}

// hotBatch is one write-combining buffer. Writers claim slots with
// pos.Add and acknowledge the copy with done.Add; the sealer (the writer
// that filled the last slot, a query draining pending writes, or a
// demotion) wins the sealed CAS, swaps pos past the end so claims fail
// over to the route's next batch, waits for the claimed slots to be
// acknowledged, and flushes. A batch is never reused: stragglers holding
// a stale pointer see it full and sealed forever.
type hotBatch struct {
	pos    atomic.Int64
	done   atomic.Int64
	sealed atomic.Bool
	first  atomic.Int64 // stream time of the first claim, plus one
	obs    []hotObs
}

func newHotBatch(n int) *hotBatch { return &hotBatch{obs: make([]hotObs, n)} }

// hotRoute is one splayed key's routing state. Everything but the atomic
// fields is immutable after construction.
type hotRoute struct {
	k      entryKey
	home   uint32                   // home shard index (== shards[0])
	shards []uint32                 // distinct replica shard indices, len >= 2
	hits   atomic.Uint64            // flushed writes, monotone
	cur    atomic.Pointer[hotBatch] // current write-combining batch
	spare  atomic.Pointer[hotBatch] // recycled batch awaiting reuse
	// draining diverts writers to the home path while a demotion flushes
	// and drains this route; set strictly before any batch or ring moves.
	draining atomic.Bool
	// sweepSeq/sweptHits make demotion judgements idempotent per home
	// epoch: only the sweeper that advances sweepSeq to a newer epoch
	// judges the hits delta, so a delayed or duplicate sweep of the same
	// epoch cannot observe an empty window and demote a hot key.
	sweepSeq  atomic.Uint64
	sweptHits atomic.Uint64
	// silentHits/silent catch routes whose HOME shard went quiet: every
	// foreign shard's epoch roll also glances at the route, and
	// DemoteHysteresis consecutive glances with no traffic at all (hits
	// frozen, no pending batch) demote it — without this, a route homed
	// on a fully-silent shard would stay splayed forever, since home
	// sweeps only run on home writes.
	silentHits atomic.Uint64
	silent     atomic.Uint32
	// newest is the route's bucket high-water mark. Every sub-ring
	// advances to it before absorbing a flush, and queries clamp to it,
	// so the retention window of a splayed key tracks the whole key's
	// stream — not each replica's slice of it — exactly as one unsplayed
	// ring would.
	newest atomic.Int64
}

// raiseNewest lifts the route high-water to bkt and returns the current
// mark.
func (r *hotRoute) raiseNewest(bkt int64) int64 {
	for {
		cur := r.newest.Load()
		if bkt <= cur {
			return cur
		}
		if r.newest.CompareAndSwap(cur, bkt) {
			return bkt
		}
	}
}

// nextBatch returns a spare batch reset for reuse, or allocates one.
// Recycling is strictly per-route, and the reset happens here — at
// install time, moments before the caller publishes the batch as cur —
// never when the batch is parked: a parked batch stays full and sealed,
// so a stale claimant still holding its pointer can't deposit into a
// buffer nobody will flush. The reset order matters too: pos opens the
// batch for claims, so it resets last, and a claim that slips in between
// the reset and the publish lands in a buffer its installer is already
// committed to publishing.
func (r *hotRoute) nextBatch(n int) *hotBatch {
	b := r.spare.Swap(nil)
	if b == nil {
		return newHotBatch(n)
	}
	b.done.Store(0)
	b.sealed.Store(false)
	b.first.Store(0)
	b.pos.Store(0)
	return b
}

// recycle parks a fully-flushed batch for reuse, still full and sealed
// (see nextBatch).
func (r *hotRoute) recycle(b *hotBatch) {
	r.spare.Store(b)
}

// hotTable is an immutable snapshot of the splayed keys, swapped
// atomically on promotion and demotion and read lock-free by every write
// and query.
type hotTable struct {
	m map[entryKey]*hotRoute
}

func lenHot(t *hotTable) int {
	if t == nil {
		return 0
	}
	return len(t.m)
}

// hotRouteFor returns the current route for k, or nil. Lock-free: one
// atomic load plus a map read of an immutable table.
func (s *Store) hotRouteFor(k entryKey) *hotRoute {
	tab := s.hot.Load()
	if tab == nil {
		return nil
	}
	return tab.m[k]
}

// observeHot buffers one write of a hot key into the route's current
// batch; the writer that fills the batch seals and flushes it. Returns
// false when the caller must take the home path instead — because the
// route was demoted, or because the batch is full and its sealer hasn't
// installed a successor after a few yields (a descheduled sealer must
// not turn every other writer into a spinner; the home entry is always a
// valid target, so diverting keeps everyone making progress).
func (s *Store) observeHot(obs Observation, k entryKey, r *hotRoute) bool {
	for try := 0; ; try++ {
		if s.hotRouteFor(k) != r || r.draining.Load() {
			return false
		}
		b := r.cur.Load()
		i := b.pos.Add(1) - 1
		if i >= int64(len(b.obs)) {
			if try == 2 {
				return false
			}
			// Full. Don't just wait for the writer that filled it — if that
			// goroutine was descheduled before installing a successor, any
			// claimant can win the seal CAS, publish a fresh batch, and
			// flush in its place.
			s.sealAndFlush(r, b, true)
			runtime.Gosched()
			continue
		}
		b.obs[i] = hotObs{item: obs.Item, value: obs.Value, time: obs.Time}
		b.done.Add(1)
		switch {
		case i == int64(len(b.obs))-1:
			s.sealAndFlush(r, b, true)
		case i == 0:
			b.first.Store(obs.Time + 1)
		case obs.Time+1-b.first.Load() > s.hotStale && b.first.Load() > 0:
			// A slow batch must not outlive the retention window it will
			// eventually flush into: seal it once its oldest observation
			// is a quarter of the ring behind the stream.
			s.sealAndFlush(r, b, true)
		}
		return true
	}
}

// sealAndFlush closes one batch and applies it. Exactly one caller wins
// the CAS; it replaces the route's current batch (when the route is still
// published), waits for in-flight claimants to finish copying, and
// flushes. Only the route's *current* batch is sealable: a parked batch
// mid-reinstall briefly has sealed == false before its pos resets, and a
// stale caller winning that CAS would strand acknowledged writes in a
// buffer nobody flushes — the cur check rejects it, and a swap of cur
// after the check implies someone else already won this batch's seal, so
// the CAS settles the race. act gates the epoch side effects (promotions
// and the demotion sweep) — a flush running inside demote already holds
// the hot-table lock, so it must not re-enter it.
func (s *Store) sealAndFlush(r *hotRoute, b *hotBatch, act bool) {
	if b == nil || b != r.cur.Load() || !b.sealed.CompareAndSwap(false, true) {
		return
	}
	n := b.pos.Swap(int64(len(b.obs)))
	if n > int64(len(b.obs)) {
		n = int64(len(b.obs))
	}
	if !r.draining.Load() && s.hotRouteFor(r.k) == r {
		r.cur.Store(r.nextBatch(len(b.obs)))
	}
	for b.done.Load() != n {
		runtime.Gosched() // claimants are lock-free; this wait is bounded
	}
	if n > 0 {
		s.flushBatch(r, b.obs[:n], act)
	}
	r.recycle(b)
}

// flushBatch applies one sealed batch, split into runs of same-bucket
// observations; each run flushes to the replica its bucket is affine to
// (bucket index mod R-1, over shards[1:]) under a single shard-lock
// acquisition. Bucket affinity means exactly one ring ever opens a
// synopsis for a given bucket — and replica rings recycle, so it is
// reused rather than reallocated — while successive buckets rotate
// across the replica shards. If the route started draining while the
// batch was in flight, runs divert to the home entry (which the drain
// merges into), so nothing is stranded.
func (s *Store) flushBatch(r *hotRoute, obs []hotObs, act bool) {
	proto, err := s.proto(r.k.metric)
	if err != nil {
		return // the metric table never shrinks, so this cannot happen
	}
	var applied, dropped uint64
	var promote []entryKey
	type sweepReq struct {
		idx uint32
		seq uint64
	}
	var sweeps []sweepReq
	for start := 0; start < len(obs); {
		bkt := obs[start].time / s.cfg.BucketWidth
		end := start + 1
		for end < len(obs) && obs[end].time/s.cfg.BucketWidth == bkt {
			end++
		}
		// Affine targets are the true replicas only (shards[1:]): replica
		// rings never expose synopses outside the hot-key locks, so their
		// buckets recycle allocation-free; the home ring's sealed buckets
		// can escape to lock-free cold-path readers and cannot.
		idx := r.shards[1+uint64(bkt)%uint64(len(r.shards)-1)]
		replica := idx != r.home
		sh := s.shards[idx]
		sh.mu.Lock()
		if replica && (s.hotRouteFor(r.k) != r || r.draining.Load()) {
			// Demoting: the drain may already have passed this shard.
			sh.mu.Unlock()
			idx, replica = r.home, false
			sh = s.shards[idx]
			sh.mu.Lock()
		}
		e := sh.getOrCreate(r.k, s.cfg.RingBuckets, replica)
		if anchor := r.raiseNewest(bkt); anchor > e.newest {
			e.advance(anchor, sh)
		}
		a, d := s.applyLocked(sh, e, obs[start:end], proto)
		if a > 0 {
			// Splayed traffic advances the shard's detection epoch (so a
			// shard whose load is all hot keys still rolls) but skips the
			// tracker — the key is already promoted. Epochs are harvested
			// only when the caller can act on the result: an act=false
			// flush (inside demote or a sweep) leaves the boundary for
			// the next actionable write instead of discarding a tracker
			// full of promotion evidence.
			sh.epochWrites += int(a)
			if act && sh.epochWrites >= s.cfg.HotKey.EpochWrites {
				cand, seq := s.harvestLocked(sh)
				promote = append(promote, cand...)
				sweeps = append(sweeps, sweepReq{idx: idx, seq: seq})
			}
		}
		s.evict(sh)
		sh.mu.Unlock()
		applied += a
		dropped += d
		start = end
	}
	if applied > 0 {
		// Keep the home entry warm: it holds the key's pre-promotion
		// history and is the drain target, but receives no writes while
		// the key is splayed — without a recency refresh the store's
		// hottest keys would drift to the eviction tail and lose their
		// history to the byte-budget/idle policies an unsplayed store
		// would never apply to them. Advancing the home shard's clock
		// mirrors the unsplayed store too, where these writes would have
		// landed on this shard.
		maxT := int64(-1)
		for i := range obs {
			if obs[i].time > maxT {
				maxT = obs[i].time
			}
		}
		hsh := s.shards[r.home]
		hsh.mu.Lock()
		if maxT > hsh.maxTime {
			hsh.maxTime = maxT
		}
		if e, ok := hsh.entries[r.k]; ok {
			if maxT > e.lastWrite {
				e.lastWrite = maxT
			}
			hsh.touch(e)
		}
		hsh.mu.Unlock()
	}
	s.observed.Add(applied)
	s.splayed.Add(applied)
	s.droppedLate.Add(dropped)
	r.hits.Add(applied)
	if act {
		for _, sw := range sweeps {
			s.sweepRoutes(sw.idx, sw.seq)
		}
		for _, pk := range promote {
			s.promote(pk)
		}
	}
}

// FlushHot seals and applies every hot key's pending write-combining
// batch. Queries drain the key they touch automatically; FlushHot is for
// whole-store settlement — end of a replay, before comparing stats, or
// shutdown.
func (s *Store) FlushHot() {
	tab := s.hot.Load()
	if tab == nil {
		return
	}
	for _, r := range tab.m {
		if b := r.cur.Load(); b.pos.Load() > 0 {
			s.sealAndFlush(r, b, true)
		}
	}
}

// packHotKey encodes an entryKey for the per-shard frequency tracker: a
// varint metric length keeps the split unambiguous for any key bytes.
func packHotKey(k entryKey) string {
	buf := make([]byte, 0, len(k.metric)+len(k.key)+binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(len(k.metric)))
	buf = append(buf, k.metric...)
	buf = append(buf, k.key...)
	return string(buf)
}

// unpackHotKey reverses packHotKey; ok is false on a corrupt encoding
// (which would indicate a tracker bug, not bad user input).
func unpackHotKey(s string) (entryKey, bool) {
	n, sz := binary.Uvarint([]byte(s))
	if sz <= 0 || uint64(len(s)-sz) < n {
		return entryKey{}, false
	}
	return entryKey{metric: s[sz : sz+int(n)], key: s[sz+int(n):]}, true
}

// harvestLocked runs at a shard's epoch boundary with sh.mu held: it
// collects promotion candidates from the tracker and resets the epoch.
// The actual promotions (and the demotion sweep) happen after the shard
// lock is released — promote/demote take the hot-table locks, and the
// drain takes other shards' locks, so neither may run under sh.mu.
func (s *Store) harvestLocked(sh *shard) ([]entryKey, uint64) {
	sh.epochWrites = 0
	sh.epochSeq++
	if sh.tracker == nil {
		return nil, sh.epochSeq
	}
	threshold := s.cfg.HotKey.promoteSamples()
	var promote []entryKey
	for _, c := range sh.tracker.TopK(s.cfg.HotKey.TrackerK) {
		if c.Count < threshold {
			break // TopK is sorted descending
		}
		if k, ok := unpackHotKey(c.Item); ok {
			promote = append(promote, k)
		}
	}
	sh.tracker.Reset()
	return promote, sh.epochSeq
}

// promote splays one key across Replicas distinct shards. It only
// publishes routing state — no entry data moves; the home entry keeps its
// history and becomes replica 0.
func (s *Store) promote(k entryKey) {
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	old := s.hot.Load()
	if old != nil && old.m[k] != nil {
		return // raced with another promotion of the same key
	}
	if lenHot(old) >= s.cfg.HotKey.MaxHot {
		return
	}
	home := s.shardIndex(k)
	r := &hotRoute{k: k, home: home}
	r.shards = make([]uint32, s.cfg.HotKey.Replicas)
	for j := range r.shards {
		r.shards[j] = uint32((uint64(home) + uint64(j)) & s.mask)
	}
	r.cur.Store(newHotBatch(s.cfg.HotKey.BatchWrites))
	// Seed the route's high water from the home ring: retention decisions
	// made right after promotion must match the ones the unsplayed entry
	// would have made.
	hw := int64(-1)
	hsh := s.shards[home]
	hsh.mu.RLock()
	if e, ok := hsh.entries[k]; ok {
		hw = e.newest
	}
	hsh.mu.RUnlock()
	r.newest.Store(hw)
	next := &hotTable{m: make(map[entryKey]*hotRoute, 1+lenHot(old))}
	if old != nil {
		for kk, rr := range old.m {
			next.m[kk] = rr
		}
	}
	next.m[k] = r
	s.hot.Store(next)
	s.promotions.Add(1)
}

// sweepRoutes runs after a shard's epoch boundary (without its lock): it
// checks every splayed key homed on that shard and demotes the ones whose
// traffic has cooled. seq is the epoch the caller's harvest produced:
// only the sweeper that advances a route's sweepSeq to a newer epoch
// judges it, so duplicate or delayed sweeps of the same epoch are no-ops
// instead of observing an already-consumed window. Routes homed on
// OTHER shards get a silence check on every sweep: a route whose home
// shard stopped receiving writes entirely has no epoch boundary of its
// own to judge it, so DemoteHysteresis consecutive foreign epoch rolls
// observing zero traffic (hits frozen, no pending batch) demote it and
// fold its replicas home. Concurrent foreign sweeps may count silence
// faster than one-per-epoch — the hysteresis is a floor on evidence,
// not an exact roll count — and any traffic resets the streak.
func (s *Store) sweepRoutes(shardIdx uint32, seq uint64) {
	tab := s.hot.Load()
	if tab == nil {
		return
	}
	below := s.cfg.HotKey.demoteBelow()
	for _, r := range tab.m {
		if r.home != shardIdx {
			s.sweepForeign(r)
			continue
		}
		claimed := false
		for {
			last := r.sweepSeq.Load()
			if seq <= last {
				break // an equal-or-newer sweep already judged this route
			}
			if r.sweepSeq.CompareAndSwap(last, seq) {
				claimed = true
				break
			}
		}
		if !claimed {
			continue
		}
		total := r.hits.Load()
		if total-r.sweptHits.Swap(total) >= below {
			continue
		}
		if b := r.cur.Load(); b != nil && b.pos.Load() > 0 {
			// A trickle of writes is sitting unflushed, invisible to the
			// hits counter. Flush it (credited to the next epoch) and
			// re-judge then, so slow-but-alive keys aren't demoted for
			// batch-fill latency and truly idle ones are caught next time.
			s.sealAndFlush(r, b, false)
			continue
		}
		s.demote(r)
	}
}

// sweepForeign is the silence check a foreign shard's epoch roll gives
// a route homed elsewhere: fresh traffic (a hits advance or a pending
// batch) resets the streak; a fully-silent route demotes once the
// streak reaches DemoteHysteresis, restoring the state an unsplayed
// store would hold instead of pinning dead replica rings until their
// idle eviction.
func (s *Store) sweepForeign(r *hotRoute) {
	total := r.hits.Load()
	moved := r.silentHits.Swap(total) != total
	if b := r.cur.Load(); moved || (b != nil && b.pos.Load() > 0) {
		r.silent.Store(0)
		return
	}
	if int(r.silent.Add(1)) >= s.cfg.HotKey.DemoteHysteresis {
		s.demote(r)
	}
}

// demote retires the route: it diverts writers to the home path (the
// draining flag), flushes the pending batch home, drains every replica
// ring into the home entry, and only then unpublishes the route. The
// route stays visible until the drain completes so a concurrent Query
// either gathers home+replicas under the hotRW read lock (the drain's
// write lock excludes it) or, having missed the route, reads a home
// entry the drain has already finished — never a home ring still missing
// replica-resident history.
func (s *Store) demote(r *hotRoute) {
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	old := s.hot.Load()
	if old == nil || old.m[r.k] != r {
		return // raced with another demotion
	}
	r.draining.Store(true)
	s.sealAndFlush(r, r.cur.Load(), false)

	s.hotRW.Lock()
	defer s.hotRW.Unlock()
	for _, idx := range r.shards[1:] {
		sh := s.shards[idx]
		sh.mu.Lock()
		e, ok := sh.entries[r.k]
		var slots []slot
		if ok {
			sh.remove(e)
			slots = e.slots
		}
		sh.mu.Unlock()
		if len(slots) > 0 {
			s.drainInto(r.k, slots, r.newest.Load())
		}
	}
	next := &hotTable{m: make(map[entryKey]*hotRoute, len(old.m)-1)}
	for kk, rr := range old.m {
		if rr != r {
			next.m[kk] = rr
		}
	}
	s.hot.Store(next)
	s.demotions.Add(1)
}

// drainInto merges one detached replica ring into the home entry, bucket
// by bucket, under the home shard's lock. Sealed home buckets are
// copy-on-write cloned (a reader may hold their pointers); replica
// synopses are installed sealed when the home slot is empty, because
// their pointers may equally be held by in-flight readers.
func (s *Store) drainInto(k entryKey, slots []slot, anchor int64) {
	proto, err := s.proto(k.metric)
	if err != nil {
		return // the metric table never shrinks, so this cannot happen
	}
	sh := s.shards[s.shardIndex(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.getOrCreate(k, s.cfg.RingBuckets, false)
	if anchor > e.newest {
		// The home ring may lag the route (bucket affinity sends most
		// recent buckets to replicas); expire what an unsplayed ring
		// would have expired before adopting replica history.
		e.advance(anchor, sh)
	}
	for i := range slots {
		rs := &slots[i]
		if rs.idx < 0 || rs.syn == nil {
			continue
		}
		if e.newest >= 0 && rs.idx <= e.newest-int64(len(e.slots)) {
			continue // fell behind the home window while splayed
		}
		if rs.idx > e.newest {
			e.advance(rs.idx, sh)
		}
		sl := e.slotFor(rs.idx)
		switch {
		case sl.idx != rs.idx || sl.syn == nil:
			// Home never opened this bucket: adopt the replica's synopsis
			// wholesale, sealed, since readers may still hold its pointer.
			e.bytes -= sl.bytes
			sh.bytes -= sl.bytes
			*sl = slot{idx: rs.idx, sealed: true, bytes: rs.syn.Bytes(), syn: rs.syn}
			e.bytes += sl.bytes
			sh.bytes += sl.bytes
		case sl.sealed:
			clone := proto()
			if clone.Merge(sl.syn) != nil || clone.Merge(rs.syn) != nil {
				continue // families cannot mismatch within one metric
			}
			nb := clone.Bytes()
			e.bytes += nb - sl.bytes
			sh.bytes += nb - sl.bytes
			sl.syn, sl.bytes = clone, nb
		default:
			// Open bucket: writers mutate it under the lock we hold.
			if sl.syn.Merge(rs.syn) != nil {
				continue
			}
			nb := sl.syn.Bytes()
			e.bytes += nb - sl.bytes
			sh.bytes += nb - sl.bytes
			sl.bytes = nb
		}
		if lw := rs.idx * s.cfg.BucketWidth; lw > e.lastWrite {
			e.lastWrite = lw
		}
	}
	sh.touch(e)
	s.evict(sh)
}

// HotKeys returns the currently splayed (metric, key) pairs (unordered).
func (s *Store) HotKeys() []HotKey {
	tab := s.hot.Load()
	if tab == nil {
		return nil
	}
	out := make([]HotKey, 0, len(tab.m))
	for k := range tab.m {
		out = append(out, HotKey{Metric: k.metric, Key: k.key})
	}
	return out
}
