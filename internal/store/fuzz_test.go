// Native fuzz targets for the store's write/query paths. The fuzzer
// drives a byte-script of operations — writes with random keys, deltas
// and out-of-order (even far-backward) timestamps, interleaved queries,
// stats reads and flushes — against two stores fed identically: one
// plain, one with aggressive hot-key splaying so promotion, write
// combining, demotion and drains all fire constantly. Invariants:
//
//   - nothing panics and no valid operation returns an error;
//   - byte accounting never goes negative (on either store);
//   - observations are conserved: Observed + DroppedLate == writes issued;
//   - a full-window query matches a serially-computed reference model of
//     the ring-retention semantics, exactly, on both stores — splayed and
//     plain alike.
//
// Seed corpus lives in testdata/fuzz/; run the fuzzer with
//
//	go test -run NONE -fuzz FuzzStoreObserve ./internal/store
package store

import (
	"fmt"
	"testing"
)

// fuzzRing is the ring depth both fuzz stores run with; small enough
// that scripted time jumps rotate and expire buckets constantly.
const (
	fuzzRing  = 8
	fuzzWidth = 8
	fuzzKeys  = 8
)

// refModel replays the store's documented retention semantics serially:
// per key, a write is accepted unless its bucket is more than the ring
// behind the key's newest bucket; at the end, the served window is the
// ring behind the final newest bucket.
type refModel struct {
	newest map[string]int64
	obs    map[string][][2]int64 // key -> (bucket, item id)
	drops  uint64
}

func newRefModel() *refModel {
	return &refModel{newest: map[string]int64{}, obs: map[string][][2]int64{}}
}

func (m *refModel) observe(key string, item int64, time int64) {
	bkt := time / fuzzWidth
	newest, seen := m.newest[key]
	if seen && bkt <= newest-fuzzRing {
		m.drops++
		return
	}
	if !seen || bkt > newest {
		m.newest[key] = bkt
	}
	m.obs[key] = append(m.obs[key], [2]int64{bkt, item})
}

// servedItems returns the item ids of the key's observations still inside
// the final retention window.
func (m *refModel) servedItems(key string) []int64 {
	horizon := m.newest[key] - fuzzRing
	var out []int64
	for _, o := range m.obs[key] {
		if o[0] > horizon {
			out = append(out, o[1])
		}
	}
	return out
}

func fuzzStores(t *testing.T) (plain, splayed *Store) {
	t.Helper()
	base := Config{Shards: 4, BucketWidth: fuzzWidth, RingBuckets: fuzzRing}
	var err error
	if plain, err = New(base); err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.HotKey = HotKeyConfig{
		Replicas:         4,
		EpochWrites:      16,
		PromotePct:       10,
		SampleEvery:      1,
		TrackerK:         8,
		MaxHot:           4,
		DemoteHysteresis: 2,
		BatchWrites:      4,
	}
	if splayed, err = New(hot); err != nil {
		t.Fatal(err)
	}
	for _, st := range []*Store{plain, splayed} {
		proto, err := NewDistinctProto(10, 77)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.RegisterMetric("uniq", proto); err != nil {
			t.Fatal(err)
		}
	}
	return plain, splayed
}

func FuzzStoreObserve(f *testing.F) {
	// Monotone writes across two keys.
	f.Add([]byte{0, 1, 2, 8, 0, 3, 4, 8, 0, 5, 6, 8, 1, 7, 8, 8})
	// Out-of-order and far-late writes that must be dropped.
	f.Add([]byte{0, 1, 1, 127, 0, 1, 2, 0, 0, 2, 3, 127, 0, 2, 4, 1})
	// Writes with interleaved queries, stats and flushes.
	f.Add([]byte{0, 1, 1, 16, 200, 1, 0, 0, 0, 1, 2, 16, 210, 0, 0, 0, 220, 0, 0, 0})
	// A hot key: many writes to key 0 to force promotion and demotion.
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 96; i++ {
			b = append(b, 0, 0, byte(i), 4)
		}
		for i := 0; i < 64; i++ {
			b = append(b, 0, byte(1+i%7), byte(i), 6)
		}
		return b
	}())

	f.Fuzz(func(t *testing.T, script []byte) {
		plain, splayed := fuzzStores(t)
		ref := newRefModel()
		var writes uint64
		var now, maxTime int64
		for i := 0; i+4 <= len(script); i += 4 {
			op, kb, ib, tb := script[i], script[i+1], script[i+2], script[i+3]
			switch {
			case op < 200:
				// A write: the time walks mostly forward, sometimes far
				// backward (tb is a signed delta biased positive).
				now += int64(tb) - 96
				if now < 0 {
					now = 0
				}
				if now > maxTime {
					maxTime = now
				}
				key := fmt.Sprintf("k%d", kb%fuzzKeys)
				item := int64(ib)
				obs := Observation{Metric: "uniq", Key: key, Item: fmt.Sprintf("i%d", item), Time: now}
				if err := plain.Observe(obs); err != nil {
					t.Fatalf("plain observe: %v", err)
				}
				if err := splayed.Observe(obs); err != nil {
					t.Fatalf("splayed observe: %v", err)
				}
				ref.observe(key, item, now)
				writes++
			case op < 220:
				key := fmt.Sprintf("k%d", kb%fuzzKeys)
				from := int64(ib) * 4
				to := from + int64(tb)*4
				for _, st := range []*Store{plain, splayed} {
					if _, err := st.QueryPoint("uniq", key, from, to); err != nil && from <= to {
						t.Fatalf("query [%d,%d]: %v", from, to, err)
					}
				}
			case op < 240:
				for _, st := range []*Store{plain, splayed} {
					if b := st.Stats().Bytes; b < 0 {
						t.Fatalf("negative byte accounting: %d", b)
					}
				}
			default:
				splayed.FlushHot()
			}
		}

		// Settle pending hot batches, then check the global invariants.
		splayed.FlushHot()
		for _, st := range []*Store{plain, splayed} {
			stats := st.Stats()
			if stats.Bytes < 0 {
				t.Fatalf("negative byte accounting: %+v", stats)
			}
			if stats.Observed+stats.DroppedLate != writes {
				t.Fatalf("conservation: observed %d + dropped %d != writes %d (%+v)",
					stats.Observed, stats.DroppedLate, writes, stats)
			}
			if stats.DroppedLate != ref.drops {
				t.Fatalf("drops %d != reference %d", stats.DroppedLate, ref.drops)
			}
		}

		// Full-window answers must equal the serial reference, exactly:
		// bucketed HLL merging is lossless, so any deviation is a
		// retention or splay bug, not sketch noise.
		for kb := 0; kb < fuzzKeys; kb++ {
			key := fmt.Sprintf("k%d", kb)
			direct, err := NewDistinctProto(10, 77)
			if err != nil {
				t.Fatal(err)
			}
			want := direct()
			for _, item := range ref.servedItems(key) {
				want.Observe(fmt.Sprintf("i%d", item), 1)
			}
			for name, st := range map[string]*Store{"plain": plain, "splayed": splayed} {
				got, err := st.QueryPoint("uniq", key, 0, maxTime)
				if err != nil {
					t.Fatal(err)
				}
				if ge, we := got.(*Distinct).Estimate(), want.(*Distinct).Estimate(); ge != we {
					t.Fatalf("%s %s full-window estimate %f != reference %f", name, key, ge, we)
				}
			}
		}
	})
}

func FuzzObservationCodec(f *testing.F) {
	f.Add(EncodeObservation(Observation{Metric: "m", Key: "k", Item: "i", Value: 7, Time: 42}))
	f.Add(EncodeObservation(Observation{}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{3, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		obs, err := DecodeObservation(data)
		if err != nil {
			return // corrupt input rejected: fine
		}
		// Anything that decodes must survive a round trip bit-exactly.
		back, err := DecodeObservation(EncodeObservation(obs))
		if err != nil {
			t.Fatalf("re-decode of %+v: %v", obs, err)
		}
		if back != obs {
			t.Fatalf("round trip %+v != %+v", back, obs)
		}
	})
}
