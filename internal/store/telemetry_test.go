package store

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestStoreTelemetryExposition wires a store into a registry, runs
// traffic, and checks the scrape carries the store's counters, gauges
// and latency histograms with real values behind them.
func TestStoreTelemetryExposition(t *testing.T) {
	st, err := New(Config{Shards: 4, BucketWidth: 10, RingBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	hll, err := NewDistinctProto(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterMetric("uniq", hll); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	st.SetTelemetry(reg)
	for i := int64(0); i < 300; i++ {
		obs := Observation{Metric: "uniq", Key: fmt.Sprintf("k%d", i%4), Item: fmt.Sprintf("u%d", i%29), Time: i}
		if err := st.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Query(QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: 300}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for pat, want := range map[string]string{
		`analytics_store_observations_total\{layer="store"\} (\d+)`:      "300",
		`analytics_store_entries\{layer="store"\} (\d+)`:                 "4",
		`analytics_store_lock_wait_seconds_count\{layer="store"\} (\d+)`: "300",
		`analytics_store_gather_seconds_count\{layer="store"\} (\d+)`:    "1",
	} {
		m := regexp.MustCompile(`(?m)^` + pat + `$`).FindStringSubmatch(text)
		if m == nil {
			t.Errorf("scrape is missing %s", pat)
			continue
		}
		if m[1] != want {
			t.Errorf("%s = %s, want %s", pat, m[1], want)
		}
	}
}

// benchIngest streams single-metric observations into a fresh store;
// with a live registry the hot path times every shard-lock acquisition,
// without one it pays a single nil check.
func benchIngest(b *testing.B, reg *telemetry.Registry) {
	b.Helper()
	st, err := New(Config{Shards: 8, BucketWidth: 10, RingBuckets: 64})
	if err != nil {
		b.Fatal(err)
	}
	hll, err := NewDistinctProto(12, 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.RegisterMetric("uniq", hll); err != nil {
		b.Fatal(err)
	}
	if reg != nil {
		st.SetTelemetry(reg)
	}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	items := make([]string, 128)
	for i := range items {
		items[i] = fmt.Sprintf("u%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := Observation{Metric: "uniq", Key: keys[i&15], Item: items[i&127], Time: int64(i)}
		if err := st.Observe(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreIngest pins the cost of the telemetry layer on the
// hottest path in the repo: bare is a store with no registry wired (the
// shipped default), instrumented times lock-wait on every Observe. The
// bare variant must stay within noise of the pre-telemetry baseline.
func BenchmarkStoreIngest(b *testing.B) {
	b.Run("bare", func(b *testing.B) { benchIngest(b, nil) })
	b.Run("instrumented", func(b *testing.B) { benchIngest(b, telemetry.New()) })
}
