// trace_bench_test.go pins the ingest-path cost of the tracing hooks —
// the numbers behind the checked-in BENCH_trace.json. The contract: a
// store with no tracer wired pays nothing measurable over the pre-trace
// baseline (0 extra allocs, ~1 pointer check per observe), a wired
// tracer with an untraced observation pays only the Context.Valid
// check, and only a sampled observation buys the span machinery.
package store

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// benchIngestTraced is benchIngest with a tracer wired and a fraction
// of observations carrying a sampled trace context (sampleEvery == 0
// means none do).
func benchIngestTraced(b *testing.B, tr *trace.Tracer, sampleEvery int) {
	b.Helper()
	st, err := New(Config{Shards: 8, BucketWidth: 10, RingBuckets: 64})
	if err != nil {
		b.Fatal(err)
	}
	hll, err := NewDistinctProto(12, 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.RegisterMetric("uniq", hll); err != nil {
		b.Fatal(err)
	}
	st.SetTracer(tr)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	items := make([]string, 128)
	for i := range items {
		items[i] = fmt.Sprintf("u%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := Observation{Metric: "uniq", Key: keys[i&15], Item: items[i&127], Time: int64(i)}
		if sampleEvery > 0 && i%sampleEvery == 0 {
			root := tr.StartSampled("analytics.observe")
			obs.Trace = root.Context()
			err = st.Observe(obs)
			root.Finish()
		} else {
			err = st.Observe(obs)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreIngestTraced is the tracing cost ladder. "off" must
// match BenchmarkStoreIngest/bare (same harness, nil tracer): that pair
// is the 0-extra-allocs, <=1% ns/op acceptance BENCH_trace.json pins.
func BenchmarkStoreIngestTraced(b *testing.B) {
	cfg := trace.Config{SampleRate: 1, Seed: 7}
	b.Run("off", func(b *testing.B) { benchIngestTraced(b, nil, 0) })
	b.Run("wired-untraced", func(b *testing.B) { benchIngestTraced(b, trace.NewTracer(cfg), 0) })
	b.Run("sampled-1-in-1024", func(b *testing.B) { benchIngestTraced(b, trace.NewTracer(cfg), 1024) })
	b.Run("sampled-every", func(b *testing.B) { benchIngestTraced(b, trace.NewTracer(cfg), 1) })
}
