// frozen.go is the batch-serving half of the Lambda split: a store
// recomputed from the log up to a frozen end-offset snapshot and then
// sealed. Where replay.go's Rebuild answers "what would a fresh store say
// about everything retained right now", FreezeAt answers the question the
// batch layer actually asks — "what did the log say up to exactly this
// cut" — so that a speed layer serving [ends, ...) composes with it into
// a complete, double-count-free answer (lambda.Architecture.Query merges
// the two through CombineSnapshots). The view is sealed by construction:
// it exposes no write path, so its answers are immutable once built, the
// property Figure 1 assigns to batch views.
package store

import (
	"repro/internal/core"
	"repro/internal/mqlog"
)

// FrozenView is a sealed batch view: a store rebuilt from the log prefix
// [oldest retained, ends) and then closed to writes. It is safe for
// concurrent readers (the underlying store is, and nothing mutates it).
type FrozenView struct {
	st             *Store
	ends           []uint64
	applied        uint64
	rejected       uint64
	truncated      bool
	restored       uint64
	fromCheckpoint bool
}

// FreezeAt recomputes a batch view: a fresh store with the given config
// and metric prototypes, every partition of the topic replayed from its
// oldest retained offset up to the frozen bound ends[pid] (exclusive),
// hot-key batches settled, and the result sealed. ends is typically a
// Topic.EndOffsets snapshot taken at the freeze point; it must have one
// entry per partition. Messages the bound covers but retention has
// already dropped are unrecoverable and reported via Truncated — the
// retention-vs-recomputation trade every log-backed batch layer makes.
func FreezeAt(cfg Config, protos map[string]Prototype, topic *mqlog.Topic, ends []uint64, decode Decoder) (*FrozenView, error) {
	return FreezeAtFrom(cfg, protos, topic, ends, decode, "")
}

// FreezeAtFrom is FreezeAt with an incremental-recompute fast path: when
// checkpointDir holds a compatible checkpoint (same geometry, offsets
// that do not exceed ends, no owned-partition restriction), the view is
// rehydrated from the snapshot and only the log suffix
// [checkpoint offsets, ends) is replayed — Applied then counts just the
// suffix, and Restored/FromCheckpoint report the snapshot's
// contribution. Any incompatibility or corruption falls back to the
// full [0, ends) recompute; an empty checkpointDir is exactly FreezeAt.
func FreezeAtFrom(cfg Config, protos map[string]Prototype, topic *mqlog.Topic, ends []uint64, decode Decoder, checkpointDir string) (*FrozenView, error) {
	if topic == nil {
		return nil, core.Errf("FreezeAt", "topic", "must be non-nil")
	}
	if len(ends) != topic.Partitions() {
		return nil, core.Errf("FreezeAt", "ends", "%d bounds for %d partitions", len(ends), topic.Partitions())
	}
	build := func() (*Store, error) {
		st, err := New(cfg)
		if err != nil {
			return nil, err
		}
		for name, proto := range protos {
			if err := st.RegisterMetric(name, proto); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	st, err := build()
	if err != nil {
		return nil, err
	}
	v := &FrozenView{ends: append([]uint64(nil), ends...)}
	starts := make([]uint64, topic.Partitions())
	if checkpointDir != "" {
		if man, err := ReadCheckpointManifest(checkpointDir); err == nil && checkpointCoversFreeze(man, st, ends) {
			if _, err := RestoreCheckpoint(st, checkpointDir); err == nil {
				copy(starts, man.Offsets)
				v.restored = man.Records
				v.fromCheckpoint = true
			} else if st, err = build(); err != nil {
				// A failed restore leaves partial state; recompute from a
				// fresh store instead.
				return nil, err
			}
		}
	}
	v.st = st
	// Wrap the decoder with a poison filter, as the cluster's recovery
	// replay does: a message that cannot decode, names an unregistered
	// metric, or carries a negative time is counted and skipped. Without
	// this, one poison record in the master log would wedge every future
	// recompute at the same offset forever — the batch layer must be able
	// to advance past garbage it can never fix.
	if decode == nil {
		decode = WireDecoder
	}
	inner := decode
	filtered := func(m mqlog.Message) (Observation, bool) {
		obs, ok := inner(m)
		if !ok {
			return Observation{}, false
		}
		if obs.Time < 0 || protos[obs.Metric] == nil {
			v.rejected++
			return Observation{}, false
		}
		return obs, true
	}
	for pid := 0; pid < topic.Partitions(); pid++ {
		// From the checkpoint offset when restoring, else offset 0 — not
		// StartOffset: a batch view claims the whole prefix [0, ends), so
		// starting below the retention horizon lets the reader's
		// "earliest" reset surface what was actually lost.
		_, applied, trunc, err := ReplayPartitionTo(st, topic, pid, starts[pid], ends[pid], filtered)
		v.applied += applied
		v.truncated = v.truncated || trunc
		if err != nil {
			return nil, err
		}
	}
	st.FlushHot()
	return v, nil
}

// checkpointCoversFreeze reports whether a manifest can seed a freeze at
// ends on a store with st's geometry: same bucketing, a full (unowned)
// partition set of the right width, and no offset past its bound — a
// checkpoint ahead of ends would bake in observations the view must not
// contain, and no replay can subtract them.
func checkpointCoversFreeze(man *CheckpointManifest, st *Store, ends []uint64) bool {
	if man.BucketWidth != st.cfg.BucketWidth || man.RingBuckets != st.cfg.RingBuckets {
		return false
	}
	if len(man.Partitions) != 0 || len(man.Floors) != 0 || len(man.Offsets) != len(ends) {
		return false
	}
	for pid, off := range man.Offsets {
		if off > ends[pid] {
			return false
		}
	}
	return true
}

// WriteCheckpoint snapshots the sealed view into dir, stamped with the
// view's end offsets — the pair the next FreezeAtFrom resumes from.
func (v *FrozenView) WriteCheckpoint(dir string) (CheckpointInfo, error) {
	return WriteCheckpoint(v.st, dir, CheckpointMeta{Offsets: v.ends})
}

// Query answers a serving-API request from the sealed view; see
// Store.Query for the semantics (a series the view never saw answers
// empty).
func (v *FrozenView) Query(req QueryRequest) (QueryResult, error) {
	return v.st.Query(req)
}

// QueryPoint answers a legacy point query (inclusive [from, to]) from the
// sealed view; see Store.QueryPoint.
func (v *FrozenView) QueryPoint(metric, key string, from, to int64) (Synopsis, error) {
	return v.st.QueryPoint(metric, key, from, to)
}

// Keys returns the metric's keys resident in the view.
func (v *FrozenView) Keys(metric string) []string { return v.st.Keys(metric) }

// EndOffsets returns the per-partition exclusive bounds the view was
// frozen at — the fence a speed layer truncates to after the handoff.
func (v *FrozenView) EndOffsets() []uint64 { return append([]uint64(nil), v.ends...) }

// Applied returns the number of decoded observations the recompute fed
// the view.
func (v *FrozenView) Applied() uint64 { return v.applied }

// Rejected returns the decodable messages the recompute skipped as
// poison (unregistered metric or negative time).
func (v *FrozenView) Rejected() uint64 { return v.rejected }

// Truncated reports whether retention had already dropped part of the
// range the view was asked to cover.
func (v *FrozenView) Truncated() bool { return v.truncated }

// Restored returns the checkpoint records rehydrated into the view (0
// for a full recompute).
func (v *FrozenView) Restored() uint64 { return v.restored }

// FromCheckpoint reports whether the view was seeded from a checkpoint
// (Applied then counts only the replayed log suffix).
func (v *FrozenView) FromCheckpoint() bool { return v.fromCheckpoint }

// Stats returns the sealed store's counters (useful for footprint
// reporting; the write counters are final).
func (v *FrozenView) Stats() Stats { return v.st.Stats() }
