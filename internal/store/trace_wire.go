// trace_wire.go wires the store into a trace.Tracer, mirroring the
// SetTelemetry discipline: nil tracer = no-op everywhere, wire before
// serving. The store never starts root spans — sampling decisions
// belong to the request edge (analytics.Instrument) or the ingest edge
// (the cluster router) — it only attaches child spans to contexts the
// caller already carries on Observation.Trace / QueryRequest.Trace.
package store

import "repro/internal/trace"

// SetTracer wires the store's observe and gather paths to tr; nil
// detaches. Like the telemetry histograms, the field is a plain
// pointer: set it before the store starts serving.
func (s *Store) SetTracer(tr *trace.Tracer) { s.trc = tr }

// traceObserve opens the store-side child span of a sampled write, or
// nil for the (overwhelmingly common) untraced one.
func (s *Store) traceObserve(obs Observation, shard uint32) *trace.Span {
	tr := s.trc
	if tr == nil || !obs.Trace.Valid() {
		return nil
	}
	sp := tr.StartRemote(obs.Trace, "store.observe")
	sp.SetAttrs(trace.Str("metric", obs.Metric), trace.Int("shard", int64(shard)))
	return sp
}

// traceGather opens one per-shard (or per-hot-key) gather child span on
// the query path; nil when untraced.
func (s *Store) traceGather(tctx trace.Context, name string) *trace.Span {
	tr := s.trc
	if tr == nil || !tctx.Valid() {
		return nil
	}
	return tr.StartRemote(tctx, name)
}
