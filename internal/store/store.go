// Package store is the speed-layer serving subsystem: a sharded,
// concurrent, keyed store of time-bucketed synopses that absorbs
// write-heavy streams while answering merge-queries — the partitioned
// state store the tutorial's Section 3 platforms (Storm/Heron bolts,
// Samza stores, MillWheel persistent state) all assume behind the
// topology, and the serving half of its Figure 1 Lambda Architecture's
// speed layer.
//
// Layout. Keys are (metric, key) pairs — e.g. ("uniques", "page:/home").
// Entries are spread over a power-of-two number of shards by hash, each
// shard guarded by its own sync.RWMutex, so writers on different shards
// never contend and readers never block each other (the sharding scheme
// of production in-memory caches). Each entry holds a fixed ring of time
// buckets of configurable width; each bucket is one mergeable synopsis
// (HyperLogLog, Count-Min, Space-Saving, q-digest — see synopsis.go)
// built by the metric's registered Prototype.
//
// Concurrency. A write locks only its shard, for one sketch update. When
// an entry's stream time advances to a new bucket, older buckets are
// sealed; sealed synopses are immutable — a late write to a sealed bucket
// clones the synopsis and swaps the pointer (copy-on-write), never
// mutating in place. Range queries therefore RLock the shard only long
// enough to snapshot bucket pointers (merging any still-open buckets
// under the read lock), then merge the sealed buckets lock-free outside
// it: a long query over mostly-sealed history does its heavy merging
// without holding any lock at all.
//
// Hot keys. Skewed (Zipfian) streams serialize their hottest keys on one
// shard lock; with HotKeyConfig enabled the store detects such keys with
// per-shard Space-Saving trackers and splays their writes across several
// shards, merging the sub-entries back together at query time and on
// demotion — see hot.go.
//
// Retention. Three mechanisms bound memory, mirroring the mqlog
// partition-retention design: the ring itself (a bucket falling out of
// the ring window is dropped, and writes older than the window are
// rejected and counted), per-shard byte budgets (least-recently-written
// entries are evicted first), and idle-age eviction (entries whose last
// write is older than MaxIdle stream-time units are reaped
// opportunistically during writes). Splayed sub-entries are ordinary
// entries of their shards, so they count against the same budgets.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/hashutil"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Observation is one data point bound for the store: the metric names
// which registered synopsis family absorbs it, the key selects the series,
// and item/value carry the payload (see the Synopsis adapters for which of
// the two each family consumes). Time is stream time in arbitrary integer
// units (the bucket width is expressed in the same units).
type Observation struct {
	Metric string
	Key    string
	Item   string
	Value  uint64
	Time   int64

	// Trace carries the observation's trace context when the ingest was
	// sampled (zero otherwise — the common case). It rides the in-process
	// struct only: the wire codec (EncodeObservation) does not serialize
	// it; across the log it travels as a mqlog record header instead
	// (see dstore). Hot-key write combining batches per-key and drops
	// per-record contexts — a sampled write to a splayed key traces its
	// route decision, not the deferred sketch update.
	Trace trace.Context
}

// Config tunes a Store.
type Config struct {
	// Shards is the shard count, rounded up to a power of two (default 16).
	Shards int
	// BucketWidth is the stream-time units each bucket spans (default 60).
	BucketWidth int64
	// RingBuckets is how many buckets each entry retains (default 60).
	// Writes more than RingBuckets behind an entry's newest bucket are
	// rejected and counted in Stats.DroppedLate.
	RingBuckets int
	// MaxShardBytes is the per-shard synopsis byte budget; when a write
	// pushes a shard past it, least-recently-written entries are evicted
	// until it fits (0 = unlimited).
	MaxShardBytes int
	// MaxIdle evicts entries whose last write is more than MaxIdle
	// stream-time units behind the most recent write to their shard
	// (0 = no idle eviction).
	MaxIdle int64
	// HotKey enables and tunes hot-key detection and write splaying
	// (see hot.go); the zero value disables it.
	HotKey HotKeyConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two so routing is a mask, not a modulo.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.BucketWidth <= 0 {
		c.BucketWidth = 60
	}
	if c.RingBuckets <= 0 {
		c.RingBuckets = 60
	}
	c.HotKey = c.HotKey.withDefaults()
	if c.HotKey.Replicas > c.Shards {
		c.HotKey.Replicas = c.Shards
	}
	if c.HotKey.Replicas < 2 {
		// Splaying within a single shard buys nothing; run the plain path.
		c.HotKey = HotKeyConfig{}
	}
	return c
}

// Stats is a point-in-time snapshot of the store's counters. Add sums
// snapshots from several stores; keep it in sync when adding fields.
type Stats struct {
	Observed      uint64 // observations absorbed
	DroppedLate   uint64 // observations older than the ring window
	Queries       uint64 // range queries served
	EvictedSize   uint64 // entries evicted by the byte budget
	EvictedIdle   uint64 // entries evicted by idle age
	SplayedWrites uint64 // observations routed through a hot-key splay
	Promotions    uint64 // cold -> splayed transitions
	Demotions     uint64 // splayed -> cold transitions
	HotKeys       int    // currently splayed keys
	Entries       int    // live entries, including splayed sub-entries
	Bytes         int    // synopsis bytes across all shards
}

// Add accumulates another snapshot into s — the aggregation a cluster of
// stores reports. Defined next to the struct so the field list lives in
// exactly one place.
func (s *Stats) Add(o Stats) {
	s.Observed += o.Observed
	s.DroppedLate += o.DroppedLate
	s.Queries += o.Queries
	s.EvictedSize += o.EvictedSize
	s.EvictedIdle += o.EvictedIdle
	s.SplayedWrites += o.SplayedWrites
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.HotKeys += o.HotKeys
	s.Entries += o.Entries
	s.Bytes += o.Bytes
}

// entryKey identifies one series.
type entryKey struct {
	metric string
	key    string
}

// slot is one position of an entry's bucket ring.
type slot struct {
	idx    int64 // bucket index occupying the slot; -1 when empty
	sealed bool  // immutable: late writes must copy-on-write
	bytes  int   // last accounted footprint of syn
	syn    Synopsis
}

// entry is the bucket ring of one (metric, key) series, plus its links in
// the shard's recency list. A replica entry is one splayed sub-entry of a
// hot key, resident on a shard other than the key's home shard.
type entry struct {
	k         entryKey
	slots     []slot
	newest    int64 // highest bucket index written; -1 before first write
	lastWrite int64 // stream time of the most recent write
	bytes     int   // sum of slot footprints
	replica   bool  // splayed sub-entry (excluded from Keys)
	// spare is a recycled synopsis awaiting reuse, populated only on
	// replica entries: replica buckets are read exclusively under the
	// hot-key and shard locks, so a synopsis expiring from a replica ring
	// is provably unreferenced and can be Reset in place instead of
	// handed to the garbage collector. Home and cold entries never
	// recycle — their sealed buckets escape to lock-free readers.
	spare Synopsis
	prev  *entry
	next  *entry
}

func (e *entry) slotFor(bkt int64) *slot {
	return &e.slots[int(bkt%int64(len(e.slots)))]
}

// advance moves the entry's newest bucket forward to bkt: everything
// older than bkt is sealed (including clones produced by earlier late
// writes) and buckets that fell out of the retention window are dropped,
// so queries never serve history the write path would reject. The ring is
// small and this runs once per bucket advance per entry. Callers hold the
// shard lock.
func (e *entry) advance(bkt int64, sh *shard) {
	horizon := bkt - int64(len(e.slots))
	for i := range e.slots {
		sl := &e.slots[i]
		if sl.idx < 0 {
			continue
		}
		if sl.idx <= horizon {
			e.bytes -= sl.bytes
			sh.bytes -= sl.bytes
			if e.replica && e.spare == nil && sl.syn != nil {
				if r, ok := sl.syn.(Resettable); ok {
					r.Reset()
					e.spare = sl.syn
				}
			}
			*sl = slot{idx: -1}
		} else if sl.idx < bkt {
			if !sl.sealed {
				sh.seals++
			}
			sl.sealed = true
		}
	}
	e.newest = bkt
}

// shard is one lock domain: a map of entries plus an intrusive
// recency-of-write list (front = most recently written) driving both
// eviction policies, and — when hot-key handling is on — the detection
// epoch state.
type shard struct {
	mu      sync.RWMutex
	entries map[entryKey]*entry
	head    *entry // most recently written
	tail    *entry // least recently written
	bytes   int
	maxTime int64  // newest observation time seen by the shard
	seals   uint64 // buckets sealed by time advancing (telemetry)

	epochWrites int                    // writes since the last epoch boundary
	epochSeq    uint64                 // completed detection epochs
	tracker     *frequency.SpaceSaving // hot-key candidates (nil when disabled)
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) pushFront(e *entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) touch(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// remove drops the entry from the shard. Callers hold sh.mu.
func (sh *shard) remove(e *entry) {
	sh.unlink(e)
	delete(sh.entries, e.k)
	sh.bytes -= e.bytes
}

// getOrCreate returns the shard's entry for k, creating an empty ring if
// absent. Callers hold sh.mu.
func (sh *shard) getOrCreate(k entryKey, ring int, replica bool) *entry {
	e, ok := sh.entries[k]
	if !ok {
		e = &entry{k: k, slots: make([]slot, ring), newest: -1, replica: replica}
		for i := range e.slots {
			e.slots[i].idx = -1
		}
		sh.entries[k] = e
		sh.pushFront(e)
	}
	return e
}

// Store is the sharded synopsis store.
type Store struct {
	cfg    Config
	mask   uint64
	seed   uint64
	shards []*shard

	mu      sync.RWMutex
	metrics map[string]Prototype

	// Hot-key state (hot.go): the table of splayed keys, swapped
	// atomically; hotMu serializes table edits; hotRW excludes queries
	// from gathering replica buckets while a demotion drains them.
	hot      atomic.Pointer[hotTable]
	hotMu    sync.Mutex
	hotRW    sync.RWMutex
	hotStale int64 // stream-time age at which a pending batch force-seals

	observed    atomic.Uint64
	droppedLate atomic.Uint64
	queries     atomic.Uint64
	evictedSize atomic.Uint64
	evictedIdle atomic.Uint64
	splayed     atomic.Uint64
	promotions  atomic.Uint64
	demotions   atomic.Uint64

	// Checkpoint counters (checkpoint.go): the last written snapshot's
	// size and the records rehydrated into this store at restore.
	ckptRecords atomic.Uint64
	ckptBytes   atomic.Uint64
	restored    atomic.Uint64

	// Telemetry hooks (telemetry.go). Nil when no registry is wired;
	// the write and query paths gate their time.Now() pairs on these,
	// so an uninstrumented store pays one pointer check per hot-path
	// operation.
	telLockWait *telemetry.Histogram
	telGather   *telemetry.Histogram

	// Tracer hook (trace_wire.go). Same discipline as the histograms:
	// nil when unwired, set before serving; traced paths additionally
	// gate on the request/observation carrying a valid trace context,
	// so an unwired or unsampled operation pays one pointer check.
	trc *trace.Tracer
}

// New returns an empty store.
func New(cfg Config) (*Store, error) {
	if cfg.Shards < 0 {
		return nil, core.Errf("Store", "Shards", "%d must be >= 0", cfg.Shards)
	}
	if cfg.MaxShardBytes < 0 {
		return nil, core.Errf("Store", "MaxShardBytes", "%d must be >= 0", cfg.MaxShardBytes)
	}
	if cfg.MaxIdle < 0 {
		return nil, core.Errf("Store", "MaxIdle", "%d must be >= 0", cfg.MaxIdle)
	}
	if err := cfg.HotKey.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		mask:    uint64(cfg.Shards - 1),
		seed:    hashutil.Sum64String("store", 0),
		shards:  make([]*shard, cfg.Shards),
		metrics: make(map[string]Prototype),
	}
	s.hotStale = cfg.BucketWidth * int64(cfg.RingBuckets) / 4
	if s.hotStale < cfg.BucketWidth {
		s.hotStale = cfg.BucketWidth
	}
	for i := range s.shards {
		s.shards[i] = &shard{entries: make(map[entryKey]*entry)}
		if s.hotEnabled() {
			tr, err := frequency.NewSpaceSaving(cfg.HotKey.TrackerK)
			if err != nil {
				return nil, err
			}
			s.shards[i].tracker = tr
		}
	}
	return s, nil
}

// hotEnabled reports whether hot-key splaying is configured on (Replicas
// is clamped and zeroed by withDefaults, so >= 2 means fully enabled).
func (s *Store) hotEnabled() bool { return s.cfg.HotKey.Replicas >= 2 }

// RegisterMetric binds a metric name to the Prototype that builds its
// bucket synopses. Metrics must be registered before the first write or
// query that names them; re-registering is an error.
func (s *Store) RegisterMetric(name string, proto Prototype) error {
	if name == "" {
		return core.Errf("Store", "metric", "name must be non-empty")
	}
	if proto == nil {
		return core.Errf("Store", "proto", "prototype for %q is nil", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.metrics[name]; exists {
		return fmt.Errorf("store: metric %q already registered", name)
	}
	s.metrics[name] = proto
	return nil
}

// Metrics returns the registered metric names (unordered).
func (s *Store) Metrics() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		out = append(out, name)
	}
	return out
}

func (s *Store) proto(metric string) (Prototype, error) {
	s.mu.RLock()
	p, ok := s.metrics[metric]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: %w %q", ErrUnknownMetric, metric)
	}
	return p, nil
}

// shardIndex routes a series to its home shard.
func (s *Store) shardIndex(k entryKey) uint32 {
	h := hashutil.Sum64String(k.key, hashutil.Sum64String(k.metric, s.seed))
	return uint32(h & s.mask)
}

// Observe absorbs one observation. Unknown metrics and negative times are
// errors; observations older than the entry's ring window are silently
// dropped and counted in Stats.DroppedLate (the caller cannot usefully
// retry them, which is the Kafka-consumer convention for truncated reads).
func (s *Store) Observe(obs Observation) error {
	if obs.Time < 0 {
		return core.Errf("Store", "Time", "%d must be >= 0", obs.Time)
	}
	k := entryKey{metric: obs.Metric, key: obs.Key}
	// Hot keys route before the metric-table lookup: a published route
	// proves the metric is registered (it was promoted from real writes),
	// and the flush resolves the prototype once per batch instead.
	if r := s.hotRouteFor(k); r != nil {
		if s.observeHot(obs, k, r) {
			return nil
		}
		// The route was demoted mid-flight or the batch is mid-seal; fall
		// through to the home path, anchored to the route's high water.
		proto, err := s.proto(obs.Metric)
		if err != nil {
			return err
		}
		return s.observeHome(obs, proto, k, r)
	}
	proto, err := s.proto(obs.Metric)
	if err != nil {
		return err
	}
	return s.observeHome(obs, proto, k, nil)
}

// writeLocked lands one observation in the entry's ring: late-drop check,
// bucket advance (sealing + window expiry), slot (re)initialization or
// copy-on-write, the sketch update, and byte accounting. Callers hold
// sh.mu and handle counters/eviction/epochs.
func (s *Store) writeLocked(sh *shard, e *entry, obs Observation, proto Prototype) (dropped bool, err error) {
	bkt := obs.Time / s.cfg.BucketWidth
	if e.newest >= 0 && bkt <= e.newest-int64(len(e.slots)) {
		return true, nil
	}
	if bkt > e.newest {
		e.advance(bkt, sh)
	}
	sl := e.slotFor(bkt)
	switch {
	case sl.idx != bkt:
		// Empty slot, or the ring rotating over a bucket that has fallen
		// out of the retention window. The fresh synopsis starts unsealed
		// even for a late bucket; the next time advance re-seals it.
		sl.idx = bkt
		sl.sealed = false
		sl.syn = proto()
		e.bytes -= sl.bytes
		sh.bytes -= sl.bytes
		sl.bytes = 0
	case sl.sealed:
		// Late write to a sealed bucket: a reader may hold the sealed
		// pointer outside the shard lock, so mutate a private clone and
		// swap it in. The clone stays unsealed until time next advances.
		clone := proto()
		if err := clone.Merge(sl.syn); err != nil {
			return false, fmt.Errorf("store: copy-on-write clone of %q/%q: %w", obs.Metric, obs.Key, err)
		}
		sl.syn = clone
		sl.sealed = false
	}
	if sl.sealed {
		// Writes only land on unsealed synopses; a sealed slot here means
		// the bookkeeping above has a bug, so fail loudly in tests.
		panic("store: write to sealed bucket")
	}
	sl.syn.Observe(obs.Item, obs.Value)
	nb := sl.syn.Bytes()
	e.bytes += nb - sl.bytes
	sh.bytes += nb - sl.bytes
	sl.bytes = nb
	e.lastWrite = obs.Time
	sh.touch(e)
	return false, nil
}

// observeHome is the plain write path: the series' home shard, with
// hot-key tracking when enabled. r, when non-nil, is the key's hot route
// (the write was diverted): the home ring advances to the route's bucket
// high water first, so retention decisions match an unsplayed store's.
func (s *Store) observeHome(obs Observation, proto Prototype, k entryKey, r *hotRoute) error {
	idx := s.shardIndex(k)
	sh := s.shards[idx]
	var sp *trace.Span
	if s.trc != nil && obs.Trace.Valid() {
		sp = s.traceObserve(obs, idx)
		defer sp.Finish()
	}
	h := s.telLockWait
	if h != nil || sp != nil {
		t0 := time.Now()
		sh.mu.Lock()
		if h != nil {
			h.ObserveSince(t0)
		}
		if sp != nil {
			sp.SetAttrs(trace.Int("lock_wait_ns", int64(time.Since(t0))))
		}
	} else {
		sh.mu.Lock()
	}
	if obs.Time > sh.maxTime {
		sh.maxTime = obs.Time
	}
	e := sh.getOrCreate(k, s.cfg.RingBuckets, false)
	if r != nil {
		if anchor := r.newest.Load(); anchor > e.newest {
			e.advance(anchor, sh)
		}
	}
	dropped, err := s.writeLocked(sh, e, obs, proto)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if dropped {
		sh.mu.Unlock()
		s.droppedLate.Add(1)
		return nil
	}
	var promote []entryKey
	var seq uint64
	sweep := false
	if s.hotEnabled() {
		sh.epochWrites++
		if sh.epochWrites%s.cfg.HotKey.SampleEvery == 0 {
			sh.tracker.Update(packHotKey(k))
		}
		if sh.epochWrites >= s.cfg.HotKey.EpochWrites {
			promote, seq = s.harvestLocked(sh)
			sweep = true
		}
	}
	s.evict(sh)
	sh.mu.Unlock()
	s.observed.Add(1)
	// Sweep before promoting so a just-promoted route is not immediately
	// judged on an empty epoch.
	if sweep {
		s.sweepRoutes(idx, seq)
	}
	for _, pk := range promote {
		s.promote(pk)
	}
	return nil
}

// applyLocked lands one hot key's sealed batch in the entry's ring. It
// follows writeLocked's semantics observation-for-observation (in claim
// order) but amortizes the bookkeeping: slot setup, copy-on-write checks
// and byte accounting run once per run of same-bucket observations, and
// the recency touch once per batch. Callers hold sh.mu.
func (s *Store) applyLocked(sh *shard, e *entry, obs []hotObs, proto Prototype) (applied, dropped uint64) {
	var sl *slot
	cur := int64(-2) // bucket the run is writing; -2 = none yet
	maxT := int64(-1)
	settle := func() {
		if sl == nil {
			return
		}
		nb := sl.syn.Bytes()
		e.bytes += nb - sl.bytes
		sh.bytes += nb - sl.bytes
		sl.bytes = nb
	}
	for i := range obs {
		o := &obs[i]
		bkt := o.time / s.cfg.BucketWidth
		if bkt != cur {
			settle()
			cur, sl = bkt, nil
			if e.newest >= 0 && bkt <= e.newest-int64(len(e.slots)) {
				dropped++ // sl stays nil: the run is behind the window
				continue
			}
			if bkt > e.newest {
				e.advance(bkt, sh)
			}
			sl = e.slotFor(bkt)
			switch {
			case sl.idx != bkt:
				sl.idx = bkt
				sl.sealed = false
				if e.spare != nil {
					sl.syn = e.spare
					e.spare = nil
				} else {
					sl.syn = proto()
				}
				e.bytes -= sl.bytes
				sh.bytes -= sl.bytes
				sl.bytes = 0
			case sl.sealed:
				// Copy-on-write for symmetry with writeLocked; on a replica
				// the displaced synopsis is lock-protected, so it recycles.
				clone := proto()
				if clone.Merge(sl.syn) != nil {
					// Families cannot mismatch within one metric; treat a
					// failed clone like a dropped run rather than panic.
					dropped++
					sl = nil
					continue
				}
				if e.replica && e.spare == nil {
					if r, ok := sl.syn.(Resettable); ok {
						r.Reset()
						e.spare = sl.syn
					}
				}
				sl.syn = clone
				sl.sealed = false
			}
		} else if sl == nil {
			dropped++
			continue
		}
		sl.syn.Observe(o.item, o.value)
		applied++
		e.lastWrite = o.time
		if o.time > maxT {
			maxT = o.time
		}
	}
	settle()
	if maxT > sh.maxTime {
		sh.maxTime = maxT
	}
	sh.touch(e)
	return applied, dropped
}

// evict applies the byte budget and idle-age policies to one shard.
// Callers hold sh.mu.
func (s *Store) evict(sh *shard) {
	if max := s.cfg.MaxShardBytes; max > 0 {
		for sh.bytes > max && len(sh.entries) > 1 {
			sh.remove(sh.tail)
			s.evictedSize.Add(1)
		}
	}
	if idle := s.cfg.MaxIdle; idle > 0 {
		for sh.tail != nil && len(sh.entries) > 1 && sh.maxTime-sh.tail.lastWrite > idle {
			sh.remove(sh.tail)
			s.evictedIdle.Add(1)
		}
	}
}

// gather collects one shard's buckets of k overlapping [fromB, toB]:
// still-open buckets merge into result under the read lock; sealed
// buckets are returned for the caller to merge lock-free (they are
// immutable). In eager mode sealed buckets merge under the read lock too
// — hot-key gathers require it, because replica synopses are recycled
// and must never be referenced outside the hot-key and shard locks.
func (s *Store) gather(sh *shard, k entryKey, fromB, toB int64, result Synopsis, sealed []Synopsis, eager bool) ([]Synopsis, error) {
	sh.mu.RLock()
	if e, ok := sh.entries[k]; ok {
		for i := range e.slots {
			sl := &e.slots[i]
			if sl.idx < fromB || sl.idx > toB || sl.syn == nil {
				continue
			}
			if sl.sealed && !eager {
				sealed = append(sealed, sl.syn)
			} else if err := result.Merge(sl.syn); err != nil {
				sh.mu.RUnlock()
				return sealed, err
			}
		}
	}
	sh.mu.RUnlock()
	return sealed, nil
}

// Keys returns every key of the metric currently resident in the store,
// across all shards (unordered). Splayed sub-entries are skipped so a hot
// key appears once.
func (s *Store) Keys(metric string) []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, e := range sh.entries {
			if k.metric == metric && !e.replica {
				out = append(out, k.key)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Observed:      s.observed.Load(),
		DroppedLate:   s.droppedLate.Load(),
		Queries:       s.queries.Load(),
		EvictedSize:   s.evictedSize.Load(),
		EvictedIdle:   s.evictedIdle.Load(),
		SplayedWrites: s.splayed.Load(),
		Promotions:    s.promotions.Load(),
		Demotions:     s.demotions.Load(),
		HotKeys:       lenHot(s.hot.Load()),
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.RUnlock()
	}
	return st
}

// Shards returns the (rounded) shard count the store is running with.
func (s *Store) Shards() int { return s.cfg.Shards }

// BucketWidth returns the stream-time units each bucket spans.
func (s *Store) BucketWidth() int64 { return s.cfg.BucketWidth }
