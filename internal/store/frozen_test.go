package store

import (
	"fmt"
	"testing"
)

// frozenProtos returns the metric table the frozen-view tests register.
func frozenProtos(t *testing.T) map[string]Prototype {
	t.Helper()
	proto, err := NewDistinctProto(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Prototype{"uniq": proto}
}

// TestReplayPartitionToStopsAtBound: observations produced after the
// freeze must not land in the store, and the resume offset is the bound.
func TestReplayPartitionToStopsAtBound(t *testing.T) {
	_, topic, newStore := replayFixture(t, 1, 0, 100)
	end := topic.EndOffset(0)
	// Post-freeze traffic on the same series.
	for i := 100; i < 150; i++ {
		obs := Observation{Metric: "uniq", Key: "k0", Item: fmt.Sprintf("u%d", i), Time: int64(i)}
		topic.Produce(obs.Key, EncodeObservation(obs))
	}
	st := newStore()
	next, n, truncated, err := ReplayPartitionTo(st, topic, 0, 0, end, nil)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if next != end {
		t.Fatalf("next %d != frozen end %d", next, end)
	}
	if n != 100 {
		t.Fatalf("applied %d, want the 100 pre-freeze observations", n)
	}
	// A second store covering the suffix [end, live-end) completes the log:
	// the two applied counts partition the whole stream.
	tail := newStore()
	_, m, _, err := ReplayPartitionTo(tail, topic, 0, end, topic.EndOffset(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n+m != 150 {
		t.Fatalf("prefix %d + suffix %d != 150: the bound leaked or dropped", n, m)
	}
}

// TestFreezeAtIsSealedAgainstLaterProduce: a frozen view's answers must
// not move when the log keeps growing — that is what distinguishes a
// batch view from Rebuild's "everything retained right now".
func TestFreezeAtIsSealedAgainstLaterProduce(t *testing.T) {
	_, topic, _ := replayFixture(t, 4, 0, 1000)
	protos := frozenProtos(t)
	cfg := Config{Shards: 4, BucketWidth: 100, RingBuckets: 64}
	ends := topic.EndOffsets()
	v, err := FreezeAt(cfg, protos, topic, ends, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Applied() != 1000 {
		t.Fatalf("freeze applied %d, want 1000", v.Applied())
	}
	if v.Truncated() {
		t.Fatal("unexpected truncation")
	}
	before := make(map[string]float64)
	for k := 0; k < 7; k++ {
		key := fmt.Sprintf("k%d", k)
		syn, err := v.QueryPoint("uniq", key, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		before[key] = syn.(*Distinct).Estimate()
	}
	// The log grows past the freeze; the view must not notice.
	for i := 1000; i < 2000; i++ {
		obs := Observation{Metric: "uniq", Key: fmt.Sprintf("k%d", i%7), Item: fmt.Sprintf("u%d", i), Time: int64(i % 1000)}
		topic.Produce(obs.Key, EncodeObservation(obs))
	}
	for k := 0; k < 7; k++ {
		key := fmt.Sprintf("k%d", k)
		syn, err := v.QueryPoint("uniq", key, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if got := syn.(*Distinct).Estimate(); got != before[key] {
			t.Fatalf("key %s: sealed view moved %v -> %v after post-freeze produce", key, before[key], got)
		}
	}
	// And a view frozen at the same old bounds now answers identically:
	// the bound, not the call time, defines the view.
	again, err := FreezeAt(cfg, protos, topic, ends, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 7; k++ {
		key := fmt.Sprintf("k%d", k)
		syn, err := again.QueryPoint("uniq", key, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if got := syn.(*Distinct).Estimate(); got != before[key] {
			t.Fatalf("key %s: refreeze at same bounds differs: %v != %v", key, got, before[key])
		}
	}
	if len(v.Keys("uniq")) != 7 {
		t.Fatalf("view holds %d keys, want 7", len(v.Keys("uniq")))
	}
	if ends2 := v.EndOffsets(); len(ends2) != 4 {
		t.Fatalf("EndOffsets len %d", len(ends2))
	}
}

// TestFreezeAtValidation pins the error surface.
func TestFreezeAtValidation(t *testing.T) {
	_, topic, _ := replayFixture(t, 2, 0, 10)
	protos := frozenProtos(t)
	cfg := Config{Shards: 2, BucketWidth: 100, RingBuckets: 8}
	if _, err := FreezeAt(cfg, protos, nil, []uint64{0, 0}, nil); err == nil {
		t.Fatal("nil topic accepted")
	}
	if _, err := FreezeAt(cfg, protos, topic, []uint64{0}, nil); err == nil {
		t.Fatal("mismatched ends length accepted")
	}
	if _, err := FreezeAt(Config{Shards: -1}, protos, topic, topic.EndOffsets(), nil); err == nil {
		t.Fatal("invalid store config accepted")
	}
}

// TestFreezeAtSkipsPoisonMessages: a decodable message naming an
// unregistered metric (or undecodable garbage) must not wedge the
// recompute — the batch layer has to be able to advance past garbage it
// can never fix, the same convention the cluster's recovery replay uses.
func TestFreezeAtSkipsPoisonMessages(t *testing.T) {
	_, topic, _ := replayFixture(t, 1, 0, 20)
	poison := Observation{Metric: "ghost", Key: "k0", Item: "u", Time: 1}
	topic.Produce(poison.Key, EncodeObservation(poison))
	topic.Produce("k0", []byte{0xff, 0xff})
	good := Observation{Metric: "uniq", Key: "k0", Item: "u-last", Time: 2}
	topic.Produce(good.Key, EncodeObservation(good))
	v, err := FreezeAt(Config{Shards: 2, BucketWidth: 100, RingBuckets: 64}, frozenProtos(t), topic, topic.EndOffsets(), nil)
	if err != nil {
		t.Fatalf("poison message wedged the recompute: %v", err)
	}
	if v.Applied() != 21 {
		t.Fatalf("applied %d, want the 21 good observations", v.Applied())
	}
	if v.Rejected() != 1 {
		t.Fatalf("rejected %d decodable poison messages, want 1", v.Rejected())
	}
}

// TestFreezeAtReportsRetentionLoss: bounds covering history retention has
// dropped must replay what survives and report the loss.
func TestFreezeAtReportsRetentionLoss(t *testing.T) {
	const retention = 64
	_, topic, _ := replayFixture(t, 1, retention, 500)
	v, err := FreezeAt(Config{Shards: 2, BucketWidth: 100, RingBuckets: 64}, frozenProtos(t), topic, topic.EndOffsets(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Truncated() {
		t.Fatal("retention loss not reported")
	}
	if v.Applied() != retention {
		t.Fatalf("applied %d, retained suffix is %d", v.Applied(), retention)
	}
}
