package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mqlog"
)

// The store's central claim is that many writers and many readers are
// safe together: writers lock only their shard, readers snapshot sealed
// buckets and merge them outside any lock. Run a write-heavy mixed load
// across shards, keys and advancing time (so sealing, ring rotation,
// copy-on-write late writes and eviction all trigger) with concurrent
// range queries, under -race in CI.
func TestConcurrentWritersAndReaders(t *testing.T) {
	st := mustStore(t, Config{
		Shards:        8,
		BucketWidth:   10,
		RingBuckets:   16,
		MaxShardBytes: 1 << 20,
		MaxIdle:       10_000,
	})
	hll, _ := NewDistinctProto(10, 99)
	topk, _ := NewTopKProto(32)
	quant, _ := NewQuantileProto(16, 32)
	st.RegisterMetric("uniq", hll)
	st.RegisterMetric("top", topk)
	st.RegisterMetric("lat", quant)

	const (
		writers  = 8
		readers  = 4
		perGoro  = 5000
		keySpace = 64
	)
	var wg sync.WaitGroup
	var writeErrs, readErrs atomic.Uint64
	// One shared stream clock across writers, as a real ingest tier would
	// see: mostly-advancing time with a late-write minority, so sealed
	// buckets see copy-on-write while readers hold their snapshots.
	var clock atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				ts := clock.Add(1)
				if i%17 == 0 && ts > 40 {
					ts -= 40
				}
				key := fmt.Sprintf("k%d", (w*perGoro+i)%keySpace)
				metric := [...]string{"uniq", "top", "lat"}[i%3]
				obs := Observation{
					Metric: metric,
					Key:    key,
					Item:   fmt.Sprintf("item%d", i%500),
					Value:  uint64(i % 1000),
					Time:   ts,
				}
				if err := st.Observe(obs); err != nil {
					writeErrs.Add(1)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				key := fmt.Sprintf("k%d", (r*perGoro+i)%keySpace)
				metric := [...]string{"uniq", "top", "lat"}[i%3]
				syn, err := st.QueryPoint(metric, key, 0, int64(writers*perGoro))
				if err != nil {
					readErrs.Add(1)
					continue
				}
				// Exercise the result so the merged synopsis is actually
				// read, not just constructed.
				switch s := syn.(type) {
				case *Distinct:
					_ = s.Estimate()
				case *TopK:
					_ = s.Top(5)
				case *Quantiles:
					_ = s.Quantile(0.99)
				}
			}
		}(r)
	}
	wg.Wait()
	if writeErrs.Load() != 0 || readErrs.Load() != 0 {
		t.Fatalf("write errors %d, read errors %d", writeErrs.Load(), readErrs.Load())
	}
	stats := st.Stats()
	total := uint64(writers * perGoro)
	if stats.Observed+stats.DroppedLate != total {
		t.Fatalf("observed %d + dropped %d != %d", stats.Observed, stats.DroppedLate, total)
	}
	// The shared clock keeps every writer inside the ring window, so late
	// drops stay a small minority even under scheduler skew.
	if stats.Observed < total*9/10 {
		t.Fatalf("only %d of %d writes absorbed", stats.Observed, total)
	}
	if stats.Queries != readers*perGoro {
		t.Fatalf("queries %d, want %d", stats.Queries, readers*perGoro)
	}
	// Post-hoc sanity: with all writers done, a full-range query per key
	// answers without error and the store is internally consistent.
	for _, metric := range st.Metrics() {
		for _, key := range st.Keys(metric) {
			if _, err := st.QueryPoint(metric, key, 0, int64(writers*perGoro)); err != nil {
				t.Fatalf("post-run query %s/%s: %v", metric, key, err)
			}
		}
	}
}

// The hot-key machinery multiplies the concurrency surface: lock-free
// batch claims, seal races, flush-vs-demotion diversion, drain-vs-query
// exclusion, and synopsis recycling. Run the same write-heavy mixed load
// with aggressive hot-key thresholds so promotions, splayed batches and
// demotions all fire constantly while readers gather across replicas —
// under -race in CI.
func TestConcurrentHotKeyWritersAndReaders(t *testing.T) {
	st := mustStore(t, Config{
		Shards:      8,
		BucketWidth: 10,
		RingBuckets: 16,
		HotKey: HotKeyConfig{
			Replicas:         4,
			EpochWrites:      256,
			PromotePct:       10,
			SampleEvery:      2,
			MaxHot:           8,
			DemoteHysteresis: 2,
			BatchWrites:      32,
		},
	})
	hll, _ := NewDistinctProto(10, 99)
	st.RegisterMetric("uniq", hll)

	const (
		writers  = 8
		readers  = 4
		perGoro  = 5000
		keySpace = 32
	)
	var wg sync.WaitGroup
	var clock atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				ts := clock.Add(1)
				// Zipf-ish skew: half the traffic hits two keys, so they
				// promote; phase shifts make them cool and demote.
				var key string
				switch {
				case i%2 == 0 && (i/4096)%2 == 0:
					key = "hot0"
				case i%4 == 1:
					key = "hot1"
				default:
					key = fmt.Sprintf("k%d", (w*perGoro+i)%keySpace)
				}
				obs := Observation{Metric: "uniq", Key: key, Item: fmt.Sprintf("item%d", i%500), Time: ts}
				if err := st.Observe(obs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro/2; i++ {
				key := "hot0"
				if i%3 == 1 {
					key = "hot1"
				} else if i%3 == 2 {
					key = fmt.Sprintf("k%d", i%keySpace)
				}
				syn, err := st.QueryPoint("uniq", key, 0, int64(writers*perGoro))
				if err != nil {
					t.Error(err)
					return
				}
				_ = syn.(*Distinct).Estimate()
			}
		}(r)
	}
	wg.Wait()
	st.FlushHot()
	stats := st.Stats()
	total := uint64(writers * perGoro)
	if stats.Observed+stats.DroppedLate != total {
		t.Fatalf("observed %d + dropped %d != %d", stats.Observed, stats.DroppedLate, total)
	}
	if stats.Promotions == 0 || stats.SplayedWrites == 0 {
		t.Fatalf("hot path never exercised: %+v", stats)
	}
	if stats.Bytes < 0 {
		t.Fatalf("negative byte accounting: %+v", stats)
	}
	// Keys must stay deduplicated whatever splay state each key ended in.
	seen := map[string]bool{}
	for _, k := range st.Keys("uniq") {
		if seen[k] {
			t.Fatalf("key %s listed twice", k)
		}
		seen[k] = true
	}
}

// Replay and Rebuild are the batch layer; today they also run against
// stores that are concurrently absorbing live traffic (warming a store
// while it serves, rebuilding while producers keep appending). Race the
// three against each other — live writers into the same store Replay is
// feeding, producers appending to the topic mid-replay, and a Rebuild of
// an independent store from the same topic — under -race in CI.
func TestReplayRebuildConcurrentWithObserve(t *testing.T) {
	broker := mqlog.NewBroker()
	topic, err := broker.CreateTopic("events", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const prefill = 4000
	mkObs := func(i int) Observation {
		return Observation{
			Metric: "uniques",
			Key:    fmt.Sprintf("k%d", i%7),
			Item:   fmt.Sprintf("i%d", i%900),
			Time:   int64(i % 1000),
		}
	}
	for i := 0; i < prefill; i++ {
		obs := mkObs(i)
		topic.Produce(obs.Key, EncodeObservation(obs))
	}

	live := mustStore(t, Config{
		Shards:      8,
		BucketWidth: 10,
		RingBuckets: 128,
		HotKey:      HotKeyConfig{Replicas: 4, EpochWrites: 256, SampleEvery: 2, BatchWrites: 32},
	})
	registerUniques(t, live)

	var wg sync.WaitGroup
	var replayed atomic.Uint64
	var rebuilt atomic.Uint64
	// Live writers into the same store the replay is warming.
	const liveWrites = 6000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < liveWrites/4; i++ {
				if err := live.Observe(mkObs(prefill + w*liveWrites/4 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Producers appending while the replay below runs: Replay clamps to
	// the end offsets it snapshots, so these belong to live ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			obs := mkObs(prefill + liveWrites + i)
			topic.Produce(obs.Key, EncodeObservation(obs))
		}
	}()
	// Replay the retained prefix into the live store, racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n, err := Replay(live, topic, nil)
		if err != nil {
			t.Error(err)
			return
		}
		replayed.Store(n)
	}()
	// And rebuild an independent store from the same topic, racing the
	// producers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		hll, _ := NewDistinctProto(12, 42)
		st, n, err := Rebuild(Config{Shards: 4, BucketWidth: 10, RingBuckets: 128},
			map[string]Prototype{"uniques": hll}, topic, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if got := st.Stats(); got.Observed != n {
			t.Errorf("rebuilt store observed %d, replay returned %d", got.Observed, n)
		}
		rebuilt.Store(n)
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if replayed.Load() < prefill {
		t.Fatalf("replay applied %d, want at least the %d prefilled", replayed.Load(), prefill)
	}
	if rebuilt.Load() < prefill {
		t.Fatalf("rebuild applied %d, want at least the %d prefilled", rebuilt.Load(), prefill)
	}
	live.FlushHot()
	stats := live.Stats()
	want := replayed.Load() + liveWrites
	if stats.Observed+stats.DroppedLate != want {
		t.Fatalf("live store observed %d + dropped %d != replayed %d + live %d",
			stats.Observed, stats.DroppedLate, replayed.Load(), liveWrites)
	}
	// The store stays queryable and consistent after the combined load.
	for _, key := range live.Keys("uniques") {
		if _, err := live.QueryPoint("uniques", key, 0, 2000); err != nil {
			t.Fatalf("post-run query %s: %v", key, err)
		}
	}
}

// Registration racing with reads of the metric table must be safe too
// (the table has its own lock, separate from the shard locks).
func TestConcurrentRegistrationAndIngest(t *testing.T) {
	st := mustStore(t, Config{Shards: 4, BucketWidth: 10, RingBuckets: 8})
	base, _ := NewDistinctProto(10, 1)
	st.RegisterMetric("m0", base)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proto, _ := NewDistinctProto(10, uint64(g+2))
			st.RegisterMetric(fmt.Sprintf("m%d", g+1), proto)
			for i := 0; i < 2000; i++ {
				st.Observe(Observation{Metric: "m0", Key: "k", Item: fmt.Sprintf("i%d", i), Time: int64(i)})
				st.Metrics()
			}
		}(g)
	}
	wg.Wait()
	if got := len(st.Metrics()); got != 5 {
		t.Fatalf("metrics %d, want 5", got)
	}
}
