package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// The store's central claim is that many writers and many readers are
// safe together: writers lock only their shard, readers snapshot sealed
// buckets and merge them outside any lock. Run a write-heavy mixed load
// across shards, keys and advancing time (so sealing, ring rotation,
// copy-on-write late writes and eviction all trigger) with concurrent
// range queries, under -race in CI.
func TestConcurrentWritersAndReaders(t *testing.T) {
	st := mustStore(t, Config{
		Shards:        8,
		BucketWidth:   10,
		RingBuckets:   16,
		MaxShardBytes: 1 << 20,
		MaxIdle:       10_000,
	})
	hll, _ := NewDistinctProto(10, 99)
	topk, _ := NewTopKProto(32)
	quant, _ := NewQuantileProto(16, 32)
	st.RegisterMetric("uniq", hll)
	st.RegisterMetric("top", topk)
	st.RegisterMetric("lat", quant)

	const (
		writers  = 8
		readers  = 4
		perGoro  = 5000
		keySpace = 64
	)
	var wg sync.WaitGroup
	var writeErrs, readErrs atomic.Uint64
	// One shared stream clock across writers, as a real ingest tier would
	// see: mostly-advancing time with a late-write minority, so sealed
	// buckets see copy-on-write while readers hold their snapshots.
	var clock atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				ts := clock.Add(1)
				if i%17 == 0 && ts > 40 {
					ts -= 40
				}
				key := fmt.Sprintf("k%d", (w*perGoro+i)%keySpace)
				metric := [...]string{"uniq", "top", "lat"}[i%3]
				obs := Observation{
					Metric: metric,
					Key:    key,
					Item:   fmt.Sprintf("item%d", i%500),
					Value:  uint64(i % 1000),
					Time:   ts,
				}
				if err := st.Observe(obs); err != nil {
					writeErrs.Add(1)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				key := fmt.Sprintf("k%d", (r*perGoro+i)%keySpace)
				metric := [...]string{"uniq", "top", "lat"}[i%3]
				syn, err := st.Query(metric, key, 0, int64(writers*perGoro))
				if err != nil {
					readErrs.Add(1)
					continue
				}
				// Exercise the result so the merged synopsis is actually
				// read, not just constructed.
				switch s := syn.(type) {
				case *Distinct:
					_ = s.Estimate()
				case *TopK:
					_ = s.Top(5)
				case *Quantiles:
					_ = s.Quantile(0.99)
				}
			}
		}(r)
	}
	wg.Wait()
	if writeErrs.Load() != 0 || readErrs.Load() != 0 {
		t.Fatalf("write errors %d, read errors %d", writeErrs.Load(), readErrs.Load())
	}
	stats := st.Stats()
	total := uint64(writers * perGoro)
	if stats.Observed+stats.DroppedLate != total {
		t.Fatalf("observed %d + dropped %d != %d", stats.Observed, stats.DroppedLate, total)
	}
	// The shared clock keeps every writer inside the ring window, so late
	// drops stay a small minority even under scheduler skew.
	if stats.Observed < total*9/10 {
		t.Fatalf("only %d of %d writes absorbed", stats.Observed, total)
	}
	if stats.Queries != readers*perGoro {
		t.Fatalf("queries %d, want %d", stats.Queries, readers*perGoro)
	}
	// Post-hoc sanity: with all writers done, a full-range query per key
	// answers without error and the store is internally consistent.
	for _, metric := range st.Metrics() {
		for _, key := range st.Keys(metric) {
			if _, err := st.Query(metric, key, 0, int64(writers*perGoro)); err != nil {
				t.Fatalf("post-run query %s/%s: %v", metric, key, err)
			}
		}
	}
}

// Registration racing with reads of the metric table must be safe too
// (the table has its own lock, separate from the shard locks).
func TestConcurrentRegistrationAndIngest(t *testing.T) {
	st := mustStore(t, Config{Shards: 4, BucketWidth: 10, RingBuckets: 8})
	base, _ := NewDistinctProto(10, 1)
	st.RegisterMetric("m0", base)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proto, _ := NewDistinctProto(10, uint64(g+2))
			st.RegisterMetric(fmt.Sprintf("m%d", g+1), proto)
			for i := 0; i < 2000; i++ {
				st.Observe(Observation{Metric: "m0", Key: "k", Item: fmt.Sprintf("i%d", i), Time: int64(i)})
				st.Metrics()
			}
		}(g)
	}
	wg.Wait()
	if got := len(st.Metrics()); got != 5 {
		t.Fatalf("metrics %d, want 5", got)
	}
}
