// replay.go is the batch-layer half of the Lambda split: where Observe
// ingests the live stream, Rebuild replays the retained prefix of an
// mqlog topic into a fresh store. A speed-layer store fed by a topology
// and a batch-layer store rebuilt from the log converge to the same
// synopses over the log's retention window, which is exactly the
// recomputation guarantee Figure 1 of the tutorial assigns to the batch
// layer — and the recovery path when a speed-layer process is lost.
package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mqlog"
)

// EncodeObservation serializes an observation to the store's wire format
// (length-prefixed strings plus varints), suitable as an mqlog message
// value. Use the observation's Key as the mqlog message key so a series
// always lands in one partition and replays in order.
func EncodeObservation(obs Observation) []byte {
	buf := make([]byte, 0, len(obs.Metric)+len(obs.Key)+len(obs.Item)+3*binary.MaxVarintLen64)
	for _, s := range []string{obs.Metric, obs.Key, obs.Item} {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, obs.Value)
	buf = binary.AppendVarint(buf, obs.Time)
	return buf
}

// DecodeObservation parses the EncodeObservation wire format.
func DecodeObservation(data []byte) (Observation, error) {
	var obs Observation
	fields := []*string{&obs.Metric, &obs.Key, &obs.Item}
	for _, f := range fields {
		n, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < n {
			return Observation{}, fmt.Errorf("store: observation string field: %w", core.ErrCorrupt)
		}
		*f = string(data[sz : sz+int(n)])
		data = data[sz+int(n):]
	}
	v, sz := binary.Uvarint(data)
	if sz <= 0 {
		return Observation{}, fmt.Errorf("store: observation value: %w", core.ErrCorrupt)
	}
	data = data[sz:]
	t, sz := binary.Varint(data)
	if sz <= 0 {
		return Observation{}, fmt.Errorf("store: observation time: %w", core.ErrCorrupt)
	}
	obs.Value, obs.Time = v, t
	return obs, nil
}

// Decoder maps a log message to an observation; returning false skips the
// message (foreign payloads in a shared topic are not an error).
type Decoder func(mqlog.Message) (Observation, bool)

// WireDecoder decodes messages produced with EncodeObservation, skipping
// any that fail to parse.
func WireDecoder(m mqlog.Message) (Observation, bool) {
	obs, err := DecodeObservation(m.Value)
	return obs, err == nil
}

// ReplayPartition feeds one partition's messages in [from, end) into the
// store, where end is the partition's end offset as of the call (writes
// racing the replay are left to the live ingest path) and a from older
// than the retained prefix resumes at the oldest retained message —
// Kafka's "earliest" reset — with truncated reporting that messages were
// lost to retention. It returns the next offset to consume (commit this
// to resume exactly where the replay stopped) and the number of decoded
// observations applied. Unlike Replay it does NOT settle hot-key batches;
// callers replaying several partitions flush once at the end.
func ReplayPartition(st *Store, topic *mqlog.Topic, pid int, from uint64, decode Decoder) (next uint64, applied uint64, truncated bool, err error) {
	if topic == nil {
		return 0, 0, false, core.Errf("ReplayPartition", "topic", "must be non-nil")
	}
	if pid < 0 || pid >= topic.Partitions() {
		return 0, 0, false, core.Errf("ReplayPartition", "pid", "%d out of range", pid)
	}
	return ReplayPartitionTo(st, topic, pid, from, topic.EndOffset(pid), decode)
}

// ReplayPartitionTo is ReplayPartition with an explicit exclusive end
// bound — the offset-fenced form batch-view recomputation is built on: a
// batch view is defined by the log prefix [.., ends) it covers, so its
// replay must stop at the frozen bound no matter how far producers have
// advanced the partition since the freeze (an mqlog.Reader enforces the
// bound even when retention truncates the range mid-replay). A speed
// layer resuming after a batch handoff is the same call with from = the
// batch view's end offset.
func ReplayPartitionTo(st *Store, topic *mqlog.Topic, pid int, from, end uint64, decode Decoder) (next uint64, applied uint64, truncated bool, err error) {
	if st == nil || topic == nil {
		return 0, 0, false, core.Errf("ReplayPartitionTo", "store/topic", "must be non-nil")
	}
	if decode == nil {
		decode = WireDecoder
	}
	reader, err := topic.NewReader(pid, from, end)
	if err != nil {
		return from, 0, false, err
	}
	for {
		msgs := reader.Next(1024)
		if msgs == nil {
			break
		}
		for _, m := range msgs {
			obs, ok := decode(m)
			if !ok {
				continue
			}
			if oerr := st.Observe(obs); oerr != nil {
				return m.Offset, applied, reader.Truncated(), fmt.Errorf("store: replay partition %d offset %d: %w", pid, m.Offset, oerr)
			}
			applied++
		}
	}
	return reader.Offset(), applied, reader.Truncated(), nil
}

// Replay feeds the retained prefix of every partition of the topic into
// the store, from each partition's oldest retained offset up to its end
// offset as of the call (writes racing the replay are picked up by the
// live ingest path, not the replay). It returns the number of decoded
// observations fed to the store; observations older than an entry's ring
// window are dropped by the store itself and show up in
// Stats().DroppedLate, not as a reduced count here.
func Replay(st *Store, topic *mqlog.Topic, decode Decoder) (uint64, error) {
	if st == nil || topic == nil {
		return 0, core.Errf("Replay", "store/topic", "must be non-nil")
	}
	var applied uint64
	for pid := 0; pid < topic.Partitions(); pid++ {
		_, n, _, err := ReplayPartition(st, topic, pid, topic.StartOffset(pid), decode)
		applied += n
		if err != nil {
			return applied, err
		}
	}
	// Settle any hot-key write-combining batches the replay filled, so the
	// rebuilt store answers queries (and reports stats) for everything the
	// log contained before Replay returns.
	st.FlushHot()
	return applied, nil
}

// Rebuild constructs a fresh store with the given config and metric
// prototypes and replays the topic into it — the batch-layer
// recomputation. The returned store is independent of any live store
// consuming the same topic.
func Rebuild(cfg Config, protos map[string]Prototype, topic *mqlog.Topic, decode Decoder) (*Store, uint64, error) {
	st, err := New(cfg)
	if err != nil {
		return nil, 0, err
	}
	for name, proto := range protos {
		if err := st.RegisterMetric(name, proto); err != nil {
			return nil, 0, err
		}
	}
	applied, err := Replay(st, topic, decode)
	if err != nil {
		return nil, applied, err
	}
	return st, applied, nil
}
