// Property tests for the Synopsis merge laws. Every bucket synopsis the
// store serves must satisfy, for random streams:
//
//   - commutativity:   merge(A, B) answers like merge(B, A)
//   - associativity:   merge(merge(A, B), C) answers like merge(A, merge(B, C))
//   - split/unsplit:   merging the synopses of a randomly split stream
//     answers like one synopsis fed the whole stream
//
// within each family's error model. HyperLogLog (register max) and
// Count-Min (counter addition) are *exactly* invariant — the laws are
// checked with equality. Space-Saving and q-digest reorganize state on
// merge, so their laws are checked against each sketch's published
// guarantee (overestimate bounded by Err; rank error bounded by
// logU/k per constituent). The split/unsplit property is precisely the
// invariant hot-key splaying leans on: a splayed entry is a split stream
// whose parts merge at query time.
package store

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

const propTrials = 20

// splitStream deals a stream into n parts using the rng, returning the
// parts; every element lands in exactly one part.
func splitStream[T any](rng *workload.RNG, stream []T, n int) [][]T {
	parts := make([][]T, n)
	for _, x := range stream {
		i := int(rng.Uint64() % uint64(n))
		parts[i] = append(parts[i], x)
	}
	return parts
}

func mustMerge(t *testing.T, dst, src Synopsis) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
}

// copyOf clones a synopsis by merging it into a fresh prototype instance.
func copyOf(t *testing.T, proto Prototype, s Synopsis) Synopsis {
	t.Helper()
	c := proto()
	mustMerge(t, c, s)
	return c
}

func TestDistinctMergeLaws(t *testing.T) {
	proto, err := NewDistinctProto(10, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(1)
	for trial := 0; trial < propTrials; trial++ {
		n := 200 + int(rng.Uint64()%2000)
		universe := 1 + int(rng.Uint64()%1500)
		stream := make([]string, n)
		for i := range stream {
			stream[i] = fmt.Sprintf("u%d", rng.Uint64()%uint64(universe))
		}
		whole := proto()
		parts := splitStream(rng, stream, 3)
		abc := []Synopsis{proto(), proto(), proto()}
		for i, part := range parts {
			for _, item := range part {
				abc[i].Observe(item, 1)
			}
		}
		for _, item := range stream {
			whole.Observe(item, 1)
		}
		a, b, c := abc[0], abc[1], abc[2]

		// Commutativity, exactly: register-wise max has no order.
		ab := copyOf(t, proto, a)
		mustMerge(t, ab, b)
		ba := copyOf(t, proto, b)
		mustMerge(t, ba, a)
		if ab.(*Distinct).Estimate() != ba.(*Distinct).Estimate() {
			t.Fatalf("trial %d: merge not commutative: %f != %f",
				trial, ab.(*Distinct).Estimate(), ba.(*Distinct).Estimate())
		}
		// Associativity, exactly.
		abThenC := copyOf(t, proto, ab)
		mustMerge(t, abThenC, c)
		bc := copyOf(t, proto, b)
		mustMerge(t, bc, c)
		aThenBC := copyOf(t, proto, a)
		mustMerge(t, aThenBC, bc)
		if abThenC.(*Distinct).Estimate() != aThenBC.(*Distinct).Estimate() {
			t.Fatalf("trial %d: merge not associative", trial)
		}
		// Split stream == unsplit stream, exactly.
		if got, want := abThenC.(*Distinct).Estimate(), whole.(*Distinct).Estimate(); got != want {
			t.Fatalf("trial %d: split-merge %f != whole %f", trial, got, want)
		}
		if abThenC.Items() != whole.Items() {
			t.Fatalf("trial %d: items %d != %d", trial, abThenC.Items(), whole.Items())
		}
	}
}

func TestFreqMergeLaws(t *testing.T) {
	proto, err := NewFreqProto(256, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(2)
	for trial := 0; trial < propTrials; trial++ {
		n := 200 + int(rng.Uint64()%2000)
		z := workload.NewZipf(rng, 100, 1.2)
		type wobs struct {
			item string
			w    uint64
		}
		stream := make([]wobs, n)
		for i := range stream {
			stream[i] = wobs{item: fmt.Sprintf("i%d", z.Draw()), w: 1 + rng.Uint64()%5}
		}
		whole := proto()
		for _, o := range stream {
			whole.Observe(o.item, o.w)
		}
		parts := splitStream(rng, stream, 3)
		syns := make([]Synopsis, 3)
		for i, part := range parts {
			syns[i] = proto()
			for _, o := range part {
				syns[i].Observe(o.item, o.w)
			}
		}
		a, b, c := syns[0], syns[1], syns[2]
		probe := func(s Synopsis, item string) uint64 { return s.(*Freq).Count(item) }

		ab := copyOf(t, proto, a)
		mustMerge(t, ab, b)
		ba := copyOf(t, proto, b)
		mustMerge(t, ba, a)
		abThenC := copyOf(t, proto, ab)
		mustMerge(t, abThenC, c)
		bc := copyOf(t, proto, b)
		mustMerge(t, bc, c)
		aThenBC := copyOf(t, proto, a)
		mustMerge(t, aThenBC, bc)
		for u := 0; u < 100; u++ {
			item := fmt.Sprintf("i%d", u)
			if probe(ab, item) != probe(ba, item) {
				t.Fatalf("trial %d: count-min merge not commutative on %s", trial, item)
			}
			if probe(abThenC, item) != probe(aThenBC, item) {
				t.Fatalf("trial %d: count-min merge not associative on %s", trial, item)
			}
			// Counter addition is linear: split == unsplit, exactly.
			if probe(abThenC, item) != probe(whole, item) {
				t.Fatalf("trial %d: split-merge count %d != whole %d on %s",
					trial, probe(abThenC, item), probe(whole, item), item)
			}
		}
		if abThenC.Items() != whole.Items() {
			t.Fatalf("trial %d: items %d != %d", trial, abThenC.Items(), whole.Items())
		}
	}
}

func TestTopKMergeLaws(t *testing.T) {
	const k = 24
	proto, err := NewTopKProto(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(3)
	for trial := 0; trial < propTrials; trial++ {
		n := 500 + int(rng.Uint64()%3000)
		z := workload.NewZipf(rng, 200, 1.3)
		stream := make([]string, n)
		exact := map[string]uint64{}
		for i := range stream {
			stream[i] = fmt.Sprintf("i%d", z.Draw())
			exact[stream[i]]++
		}
		parts := splitStream(rng, stream, 3)
		syns := make([]Synopsis, 3)
		for i, part := range parts {
			syns[i] = proto()
			for _, item := range part {
				syns[i].Observe(item, 1)
			}
		}
		a, b, c := syns[0], syns[1], syns[2]

		// checkGuarantees asserts the Space-Saving contract on a merged
		// summary over the full stream: every tracked estimate brackets
		// the true count (count-err <= true <= count), the stream length
		// is exact, and every item with true count > n/k is tracked.
		checkGuarantees := func(s Synopsis, label string) {
			t.Helper()
			tk := s.(*TopK)
			if tk.Items() != uint64(n) {
				t.Fatalf("trial %d %s: items %d != %d", trial, label, tk.Items(), n)
			}
			tracked := map[string]bool{}
			for _, cand := range tk.Top(k) {
				tracked[cand.Item] = true
				truth := exact[cand.Item]
				if cand.Count < truth {
					t.Fatalf("trial %d %s: %s underestimated: %d < true %d",
						trial, label, cand.Item, cand.Count, truth)
				}
				if cand.Count-cand.Err > truth {
					t.Fatalf("trial %d %s: %s over error bound: %d - err %d > true %d",
						trial, label, cand.Item, cand.Count, cand.Err, truth)
				}
			}
			for item, cnt := range exact {
				if cnt > uint64(n)/uint64(k) && !tracked[item] {
					t.Fatalf("trial %d %s: heavy hitter %s (count %d > n/k) untracked",
						trial, label, item, cnt)
				}
			}
		}
		ab := copyOf(t, proto, a)
		mustMerge(t, ab, b)
		mustMerge(t, ab, c)
		checkGuarantees(ab, "(a+b)+c")
		ba := copyOf(t, proto, b)
		mustMerge(t, ba, a)
		mustMerge(t, ba, c)
		checkGuarantees(ba, "(b+a)+c")
		bc := copyOf(t, proto, b)
		mustMerge(t, bc, c)
		aThenBC := copyOf(t, proto, a)
		mustMerge(t, aThenBC, bc)
		checkGuarantees(aThenBC, "a+(b+c)")
	}
}

func TestQuantilesMergeLaws(t *testing.T) {
	const (
		logU = 12
		kq   = 64
	)
	proto, err := NewQuantileProto(logU, kq)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(4)
	for trial := 0; trial < propTrials; trial++ {
		n := 500 + int(rng.Uint64()%3000)
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = rng.Uint64() % (1 << logU)
		}
		parts := splitStream(rng, stream, 3)
		syns := make([]Synopsis, 3)
		for i, part := range parts {
			syns[i] = proto()
			for _, v := range part {
				syns[i].Observe("", v)
			}
		}
		a, b, c := syns[0], syns[1], syns[2]

		// rankOf counts stream values <= v — the exact rank the q-digest
		// answer is judged against.
		rankOf := func(v uint64) int {
			r := 0
			for _, x := range stream {
				if x <= v {
					r++
				}
			}
			return r
		}
		// A q-digest answers phi with rank error <= logU/k * n; merging
		// adds the constituents' errors, so three parts allow 3x that,
		// plus one more bound for the compression of the merge target.
		tol := float64(4) * float64(logU) / float64(kq) * float64(n)
		checkRanks := func(s Synopsis, label string) {
			t.Helper()
			qs := s.(*Quantiles)
			if qs.Items() != uint64(n) {
				t.Fatalf("trial %d %s: items %d != %d", trial, label, qs.Items(), n)
			}
			for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				v := qs.Quantile(phi)
				rank := float64(rankOf(v))
				want := phi * float64(n)
				if rank < want-tol || rank > want+tol {
					t.Fatalf("trial %d %s: phi=%.2f answered %d with rank %f, want %f +/- %f",
						trial, label, phi, v, rank, want, tol)
				}
			}
		}
		ab := copyOf(t, proto, a)
		mustMerge(t, ab, b)
		mustMerge(t, ab, c)
		checkRanks(ab, "(a+b)+c")
		ba := copyOf(t, proto, b)
		mustMerge(t, ba, a)
		mustMerge(t, ba, c)
		checkRanks(ba, "(b+a)+c")
		bc := copyOf(t, proto, b)
		mustMerge(t, bc, c)
		aThenBC := copyOf(t, proto, a)
		mustMerge(t, aThenBC, bc)
		checkRanks(aThenBC, "a+(b+c)")
	}
}

// Cross-family merges must fail for every adapter pair, not silently
// absorb — the store's copy-on-write and drain paths rely on it.
func TestCrossFamilyMergeRejected(t *testing.T) {
	hll, _ := NewDistinctProto(10, 1)
	cm, _ := NewFreqProto(64, 2, 1)
	tk, _ := NewTopKProto(4)
	qd, _ := NewQuantileProto(8, 16)
	protos := []Prototype{hll, cm, tk, qd}
	for i, pa := range protos {
		for j, pb := range protos {
			if i == j {
				continue
			}
			if err := pa().Merge(pb()); err == nil {
				t.Fatalf("adapter %d absorbed adapter %d", i, j)
			}
		}
	}
}

// TestCombineSnapshotsMatchesManualMerge pins the scatter-gather combiner:
// combining a split stream's per-part synopses must answer exactly like
// one synopsis fed the whole stream (HLL is exactly merge-invariant), the
// inputs must come back untouched, and nil parts must combine as empties.
func TestCombineSnapshotsMatchesManualMerge(t *testing.T) {
	proto, err := NewDistinctProto(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(77)
	stream := make([]string, 5000)
	for i := range stream {
		stream[i] = fmt.Sprintf("u%d", rng.Uint64()%3000)
	}
	whole := proto()
	for _, it := range stream {
		whole.Observe(it, 0)
	}
	parts := splitStream(rng, stream, 4)
	syns := make([]Synopsis, len(parts))
	for i, p := range parts {
		syns[i] = proto()
		for _, it := range p {
			syns[i].Observe(it, 0)
		}
	}
	before := make([]uint64, len(syns))
	for i, s := range syns {
		before[i] = s.Items()
	}

	combined, err := CombineSnapshots(proto, syns...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := combined.(*Distinct).Estimate(), whole.(*Distinct).Estimate(); got != want {
		t.Fatalf("combined estimate %v != whole-stream estimate %v", got, want)
	}
	for i, s := range syns {
		if s.Items() != before[i] {
			t.Fatalf("CombineSnapshots mutated input %d: items %d -> %d", i, before[i], s.Items())
		}
	}

	withNils, err := CombineSnapshots(proto, nil, syns[0], nil, syns[1], syns[2], syns[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := withNils.(*Distinct).Estimate(), whole.(*Distinct).Estimate(); got != want {
		t.Fatalf("nil-tolerant combine %v != %v", got, want)
	}

	empty, err := CombineSnapshots(proto)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Items() != 0 {
		t.Fatalf("empty combine absorbed %d items", empty.Items())
	}
}

// TestCombineSnapshotsErrors pins the failure surface: nil prototype and
// cross-family parts must error, not panic or silently drop.
func TestCombineSnapshotsErrors(t *testing.T) {
	if _, err := CombineSnapshots(nil); err == nil {
		t.Fatal("nil prototype accepted")
	}
	hll, err := NewDistinctProto(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewFreqProto(64, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineSnapshots(hll, hll(), cm()); err == nil {
		t.Fatal("cross-family combine accepted")
	}
}
