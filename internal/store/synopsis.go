// synopsis.go defines the bucket contract of the sketch store and the
// adapters that put the library's mergeable synopsis structures behind it.
//
// The store is deliberately agnostic about what a time bucket summarizes:
// a bucket is anything that can absorb observations, report its footprint,
// and merge with another bucket of the same shape (the tutorial's
// "algorithms should be able to scale out" requirement, reduced to one
// interface). Each metric registered with the store picks its synopsis by
// supplying a Prototype; range queries merge bucket synopses into a fresh
// prototype instance and return it.
package store

import (
	"bytes"
	"fmt"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/quantile"
)

// Synopsis is the contract a time bucket's summary must satisfy. Merging
// two synopses must be equivalent (within the sketch's error guarantee) to
// summarizing the concatenated observation streams.
type Synopsis interface {
	// Observe folds one observation into the summary. Which of item and
	// value an implementation uses is part of its contract: distinct and
	// top-k synopses consume the item, frequency synopses consume the item
	// weighted by value, quantile synopses consume the value alone.
	Observe(item string, value uint64)
	// Merge folds another synopsis of the same concrete type and
	// parameters into the receiver.
	Merge(other Synopsis) error
	// Items reports how many observations the summary has absorbed.
	Items() uint64
	// Bytes approximates the in-memory footprint, used by the store's
	// size-based retention accounting.
	Bytes() int
}

// Resettable is the optional synopsis extension the store's bucket
// recycling uses: a synopsis that can return to its empty state in place,
// keeping its allocations. All four built-in adapters implement it; a
// custom Synopsis that does not is simply never recycled.
type Resettable interface {
	Reset()
}

// Prototype constructs a fresh, empty Synopsis. The store calls it when a
// new time bucket opens, when a sealed bucket needs a copy-on-write clone,
// and to build the merge target of a range query, so a Prototype must
// return independent instances with identical parameters (including hash
// seeds, or merges will fail).
type Prototype func() Synopsis

// CombineSnapshots merges partial query answers into one fresh synopsis —
// the scatter-gather combiner: each part is typically one node's (or one
// key's) Query result, and the combined synopsis answers for their union.
// Parts are merged in argument order into a new proto() instance, so the
// combination is deterministic for a deterministic part order; nil parts
// are skipped (an absent partial is an empty answer, matching Query's
// never-seen-this-series semantics). The inputs are not mutated.
func CombineSnapshots(proto Prototype, parts ...Synopsis) (Synopsis, error) {
	if proto == nil {
		return nil, core.Errf("CombineSnapshots", "proto", "must be non-nil")
	}
	out := proto()
	for _, p := range parts {
		if p == nil {
			continue
		}
		if err := out.Merge(p); err != nil {
			return nil, fmt.Errorf("store: combine snapshots: %w", err)
		}
	}
	return out, nil
}

// ---- Distinct counting (HyperLogLog) ----

// Distinct is a bucket synopsis counting unique items with a HyperLogLog.
// The observation value is ignored.
type Distinct struct {
	h *cardinality.HyperLogLog
}

// NewDistinctProto returns a Prototype of HyperLogLog synopses with 2^p
// registers. The constructor is validated once, eagerly, so a bad
// precision fails at registration time rather than on first write.
func NewDistinctProto(precision uint8, seed uint64) (Prototype, error) {
	if _, err := cardinality.NewHyperLogLog(precision, seed); err != nil {
		return nil, err
	}
	return func() Synopsis {
		h, _ := cardinality.NewHyperLogLog(precision, seed)
		return &Distinct{h: h}
	}, nil
}

// Observe implements Synopsis.
func (d *Distinct) Observe(item string, _ uint64) { d.h.UpdateString(item) }

// Merge implements Synopsis.
func (d *Distinct) Merge(other Synopsis) error {
	o, ok := other.(*Distinct)
	if !ok {
		return fmt.Errorf("store: cannot merge %T into *store.Distinct: %w", other, core.ErrIncompatible)
	}
	return d.h.Merge(o.h)
}

// Reset implements Resettable.
func (d *Distinct) Reset() { d.h.Reset() }

// Items implements Synopsis.
func (d *Distinct) Items() uint64 { return d.h.Items() }

// Bytes implements Synopsis.
func (d *Distinct) Bytes() int { return d.h.Bytes() }

// Estimate returns the estimated distinct count.
func (d *Distinct) Estimate() float64 { return d.h.Estimate() }

// ---- Item frequencies (Count-Min) ----

// Freq is a bucket synopsis estimating per-item counts with a Count-Min
// sketch. The observation value is the occurrence weight (0 counts as 1).
type Freq struct {
	cm *frequency.CountMin
}

// NewFreqProto returns a Prototype of width x depth Count-Min synopses.
func NewFreqProto(width, depth int, seed uint64) (Prototype, error) {
	if _, err := frequency.NewCountMin(width, depth, seed); err != nil {
		return nil, err
	}
	return func() Synopsis {
		cm, _ := frequency.NewCountMin(width, depth, seed)
		return &Freq{cm: cm}
	}, nil
}

// Observe implements Synopsis.
func (f *Freq) Observe(item string, value uint64) {
	if value == 0 {
		value = 1
	}
	f.cm.UpdateString(item, value)
}

// Merge implements Synopsis.
func (f *Freq) Merge(other Synopsis) error {
	o, ok := other.(*Freq)
	if !ok {
		return fmt.Errorf("store: cannot merge %T into *store.Freq: %w", other, core.ErrIncompatible)
	}
	return f.cm.Merge(o.cm)
}

// Reset implements Resettable.
func (f *Freq) Reset() { f.cm.Reset() }

// Items implements Synopsis.
func (f *Freq) Items() uint64 { return f.cm.Items() }

// Bytes implements Synopsis.
func (f *Freq) Bytes() int { return f.cm.Bytes() }

// Count returns the estimated count of item.
func (f *Freq) Count(item string) uint64 { return f.cm.EstimateString(item) }

// ---- Top-k (Space-Saving) ----

// TopK is a bucket synopsis tracking heavy hitters with a Space-Saving
// summary. Each observation is one occurrence; the value is ignored.
type TopK struct {
	ss *frequency.SpaceSaving
}

// NewTopKProto returns a Prototype of k-counter Space-Saving synopses.
func NewTopKProto(k int) (Prototype, error) {
	if _, err := frequency.NewSpaceSaving(k); err != nil {
		return nil, err
	}
	return func() Synopsis {
		ss, _ := frequency.NewSpaceSaving(k)
		return &TopK{ss: ss}
	}, nil
}

// Observe implements Synopsis.
func (t *TopK) Observe(item string, _ uint64) { t.ss.Update(item) }

// Merge implements Synopsis.
func (t *TopK) Merge(other Synopsis) error {
	o, ok := other.(*TopK)
	if !ok {
		return fmt.Errorf("store: cannot merge %T into *store.TopK: %w", other, core.ErrIncompatible)
	}
	return t.ss.Merge(o.ss)
}

// Reset implements Resettable.
func (t *TopK) Reset() { t.ss.Reset() }

// Items implements Synopsis.
func (t *TopK) Items() uint64 { return t.ss.Items() }

// Bytes implements Synopsis.
func (t *TopK) Bytes() int { return t.ss.Bytes() }

// Top returns the k highest-count items seen by the bucket(s).
func (t *TopK) Top(k int) []frequency.Counted { return t.ss.TopK(k) }

// Count returns the estimated occurrence count of item (0 when the item
// fell out of the summary's k counters).
func (t *TopK) Count(item string) uint64 {
	c, _ := t.ss.Estimate(item)
	return c
}

// ---- Quantiles (q-digest) ----

// Quantiles is a bucket synopsis summarizing the distribution of the
// observation values with a mergeable q-digest. The item is ignored.
type Quantiles struct {
	q *quantile.QDigest
}

// NewQuantileProto returns a Prototype of q-digest synopses over values in
// [0, 2^logU) with compression factor k.
func NewQuantileProto(logU uint8, k uint64) (Prototype, error) {
	if _, err := quantile.NewQDigest(logU, k); err != nil {
		return nil, err
	}
	return func() Synopsis {
		q, _ := quantile.NewQDigest(logU, k)
		return &Quantiles{q: q}
	}, nil
}

// Observe implements Synopsis. Values beyond the digest's universe are
// clamped by the digest itself, so out-of-range outliers still land in
// the top leaf rather than being dropped.
func (qs *Quantiles) Observe(_ string, value uint64) { qs.q.Update(value, 1) }

// Merge implements Synopsis.
func (qs *Quantiles) Merge(other Synopsis) error {
	o, ok := other.(*Quantiles)
	if !ok {
		return fmt.Errorf("store: cannot merge %T into *store.Quantiles: %w", other, core.ErrIncompatible)
	}
	return qs.q.Merge(o.q)
}

// Reset implements Resettable.
func (qs *Quantiles) Reset() { qs.q.Reset() }

// Items implements Synopsis.
func (qs *Quantiles) Items() uint64 { return qs.q.Count() }

// Bytes implements Synopsis.
func (qs *Quantiles) Bytes() int { return qs.q.Bytes() }

// Quantile returns the estimated phi-quantile of the observed values.
func (qs *Quantiles) Quantile(phi float64) uint64 { return qs.q.Query(phi) }

// ---- Binary codecs (checkpoint/restore) ----
//
// All four built-in adapters implement encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler by delegating to their sketches — the
// optional extension the store's checkpoint writer requires of a
// Prototype's synopses. Unmarshal always decodes into a receiver the
// restoring store constructed from its own registered Prototype, so the
// receiver carries the configuration (widths, seeds, universes) and the
// codecs verify the bytes against it where the underlying sketch can.

// MarshalBinary implements encoding.BinaryMarshaler.
func (d *Distinct) MarshalBinary() ([]byte, error) { return d.h.MarshalBinary() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The
// HyperLogLog's own decoder adopts whatever precision and seed the bytes
// carry, so the adapter first checks them against the receiver's — a
// checkpoint written under a different hash seed must not silently
// rehydrate into this prototype.
func (d *Distinct) UnmarshalBinary(data []byte) error {
	if len(data) >= 9 {
		cur, err := d.h.MarshalBinary()
		if err != nil {
			return err
		}
		if cur[0] != data[0] || !bytes.Equal(cur[1:9], data[1:9]) {
			return fmt.Errorf("store: distinct synopsis: %w", core.ErrIncompatible)
		}
	}
	return d.h.UnmarshalBinary(data)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Freq) MarshalBinary() ([]byte, error) { return f.cm.MarshalBinary() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *Freq) UnmarshalBinary(data []byte) error { return f.cm.UnmarshalBinary(data) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *TopK) MarshalBinary() ([]byte, error) { return t.ss.MarshalBinary() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *TopK) UnmarshalBinary(data []byte) error { return t.ss.UnmarshalBinary(data) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (qs *Quantiles) MarshalBinary() ([]byte, error) { return qs.q.MarshalBinary() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (qs *Quantiles) UnmarshalBinary(data []byte) error { return qs.q.UnmarshalBinary(data) }
