package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mqlog"
)

func ckptGeom() Config {
	return Config{Shards: 4, BucketWidth: 100, RingBuckets: 64}
}

// ckptProtos returns all four synopsis families — a checkpoint must round-
// trip every codec the store can hold.
func ckptProtos(t testing.TB) map[string]Prototype {
	t.Helper()
	protos := map[string]Prototype{}
	mk := func(name string, p Prototype, err error) {
		if err != nil {
			t.Fatal(err)
		}
		protos[name] = p
	}
	cm, err := NewFreqProto(256, 4, 11)
	mk("hits", cm, err)
	hll, err := NewDistinctProto(12, 11)
	mk("uniq", hll, err)
	ss, err := NewTopKProto(64)
	mk("top", ss, err)
	qd, err := NewQuantileProto(16, 64)
	mk("lat", qd, err)
	return protos
}

func ckptStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range ckptProtos(t) {
		if err := st.RegisterMetric(name, p); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// ckptObs is the deterministic four-family workload the checkpoint tests
// feed: i indexes the stream, keys skew so hot-key promotion fires.
func ckptObs(i int) []Observation {
	key := fmt.Sprintf("k%d", i*i%13)
	now := int64(i)
	item := fmt.Sprintf("u%d", i%97)
	return []Observation{
		{Metric: "hits", Key: key, Item: item, Value: 1 + uint64(i)%5, Time: now},
		{Metric: "uniq", Key: key, Item: item, Time: now},
		{Metric: "top", Key: "global", Item: key, Time: now},
		{Metric: "lat", Key: key, Value: uint64(i*2654435761) % 50000, Time: now},
	}
}

// assertCheckpointAgree compares every key's answers across all four families
// and two time ranges. Observation order is identical on both sides, so
// the sketch answers must be exactly equal, not merely close.
func assertCheckpointAgree(t *testing.T, got, want interface {
	Query(QueryRequest) (QueryResult, error)
	Keys(string) []string
}, to int64, context string) {
	t.Helper()
	keys := want.Keys("hits")
	if len(keys) == 0 {
		t.Fatalf("%s: reference store has no keys", context)
	}
	for _, r := range [][2]int64{{0, to + 1}, {to / 3, 2 * to / 3}} {
		req := QueryRequest{Metrics: []string{"hits", "uniq", "lat"}, Keys: keys, From: r[0], To: r[1]}
		gr, err := got.Query(req)
		if err != nil {
			t.Fatalf("%s: %v", context, err)
		}
		wr, err := want.Query(req)
		if err != nil {
			t.Fatalf("%s: %v", context, err)
		}
		ga, wa := gr.Answers(), wr.Answers()
		if len(ga) != len(wa) {
			t.Fatalf("%s: %d answers vs %d", context, len(ga), len(wa))
		}
		for i := range ga {
			for u := 0; u < 8; u++ {
				item := fmt.Sprintf("u%d", u)
				if g, w := ga[i].Count(item), wa[i].Count(item); g != w {
					t.Fatalf("%s: range %v %s/%s count[%s] %d != %d", context, r, ga[i].Metric, ga[i].Key, item, g, w)
				}
			}
			if g, w := ga[i].Distinct(), wa[i].Distinct(); g != w {
				t.Fatalf("%s: range %v %s/%s distinct %d != %d", context, r, ga[i].Metric, ga[i].Key, g, w)
			}
			for _, phi := range []float64{0.5, 0.99} {
				if g, w := ga[i].Quantile(phi), wa[i].Quantile(phi); g != w {
					t.Fatalf("%s: range %v %s/%s p%v %d != %d", context, r, ga[i].Metric, ga[i].Key, phi, g, w)
				}
			}
		}
		gt, err := got.Query(QueryRequest{Metric: "top", Key: "global", From: r[0], To: r[1]})
		if err != nil {
			t.Fatal(err)
		}
		wt, err := want.Query(QueryRequest{Metric: "top", Key: "global", From: r[0], To: r[1]})
		if err != nil {
			t.Fatal(err)
		}
		for j, c := range wt.TopK(5) {
			if g := gt.TopK(5)[j]; g != c {
				t.Fatalf("%s: range %v top[%d] %+v != %+v", context, r, j, g, c)
			}
		}
	}
}

func TestCheckpointRestoreParity(t *testing.T) {
	// Hot-key splaying on: WriteCheckpoint must quiesce replica sub-entries
	// back into their home series before serializing.
	cfg := ckptGeom()
	cfg.HotKey = HotKeyConfig{Replicas: 4, MaxHot: 8, PromotePct: 1, EpochWrites: 128, SampleEvery: 1}
	src := ckptStore(t, cfg)
	const n = 4000
	for i := 0; i < n; i++ {
		for _, obs := range ckptObs(i) {
			if err := src.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	src.FlushHot()

	dir := t.TempDir()
	meta := CheckpointMeta{Offsets: []uint64{7, 11}, Partitions: []int{0, 3}, Floors: []uint64{2, 5}}
	info, err := WriteCheckpoint(src, dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records == 0 || info.Bytes == 0 {
		t.Fatalf("empty checkpoint written: %+v", info)
	}

	dst := ckptStore(t, cfg)
	man, err := RestoreCheckpoint(dst, dir)
	if err != nil {
		t.Fatal(err)
	}
	// The manifest carries the caller's log position verbatim.
	for i, off := range meta.Offsets {
		if man.Offsets[i] != off {
			t.Fatalf("manifest offsets %v, want %v", man.Offsets, meta.Offsets)
		}
	}
	if len(man.Partitions) != 2 || man.Partitions[1] != 3 || len(man.Floors) != 2 || man.Floors[1] != 5 {
		t.Fatalf("manifest partitions %v floors %v, want %v %v", man.Partitions, man.Floors, meta.Partitions, meta.Floors)
	}
	if man.Records != info.Records {
		t.Fatalf("manifest records %d, checkpoint wrote %d", man.Records, info.Records)
	}
	assertCheckpointAgree(t, dst, src, n-1, "restore parity")

	// A restored store keeps absorbing: sealing must match what advance
	// would have left, so later writes land normally.
	late := ckptObs(n)
	for _, obs := range late {
		if err := dst.Observe(obs); err != nil {
			t.Fatal(err)
		}
		if err := src.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	assertCheckpointAgree(t, dst, src, n, "post-restore writes")
}

// TestCheckpointSuffixReplayEqualsFullReplay is the crash-recovery oracle:
// a store restored from a mid-stream checkpoint and fed only the log
// suffix past its recorded offsets must equal a store that replayed the
// whole log — the exact contract node recovery and FreezeAtFrom rely on.
func TestCheckpointSuffixReplayEqualsFullReplay(t *testing.T) {
	topic, err := mqlog.NewBroker().CreateTopic("log", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const half = 1000
	produce := func(from, to int) {
		for i := from; i < to; i++ {
			for _, obs := range ckptObs(i) {
				topic.Produce(obs.Key, EncodeObservation(obs))
			}
		}
	}
	produce(0, half)
	cut := topic.EndOffsets()
	produce(half, 2*half)

	// Prefix store: replay [0, cut), checkpoint stamped with cut.
	prefix := ckptStore(t, ckptGeom())
	for pid := 0; pid < topic.Partitions(); pid++ {
		if _, _, _, err := ReplayPartitionTo(prefix, topic, pid, 0, cut[pid], nil); err != nil {
			t.Fatal(err)
		}
	}
	prefix.FlushHot()
	dir := t.TempDir()
	if _, err := WriteCheckpoint(prefix, dir, CheckpointMeta{Offsets: cut}); err != nil {
		t.Fatal(err)
	}

	// Recovered store: restore + suffix replay only.
	recovered := ckptStore(t, ckptGeom())
	man, err := RestoreCheckpoint(recovered, dir)
	if err != nil {
		t.Fatal(err)
	}
	var suffix uint64
	for pid := 0; pid < topic.Partitions(); pid++ {
		_, applied, _, err := ReplayPartitionTo(recovered, topic, pid, man.Offsets[pid], topic.EndOffset(pid), nil)
		if err != nil {
			t.Fatal(err)
		}
		suffix += applied
	}
	recovered.FlushHot()
	if want := uint64(half * 4); suffix != want {
		t.Fatalf("suffix replay applied %d observations, want exactly the suffix %d", suffix, want)
	}

	oracle, _, err := Rebuild(ckptGeom(), ckptProtos(t), topic, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertCheckpointAgree(t, recovered, oracle, 2*half-1, "suffix replay vs full replay")
}

func TestCheckpointRestoreValidation(t *testing.T) {
	src := ckptStore(t, ckptGeom())
	for i := 0; i < 200; i++ {
		for _, obs := range ckptObs(i) {
			if err := src.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	dir := t.TempDir()
	if _, err := WriteCheckpoint(src, dir, CheckpointMeta{Offsets: []uint64{1}}); err != nil {
		t.Fatal(err)
	}

	// Geometry mismatch: restoring into different bucketing would merge
	// observations into wrong time ranges silently, so it must refuse.
	narrow := ckptGeom()
	narrow.BucketWidth = 50
	if _, err := RestoreCheckpoint(ckptStore(t, narrow), dir); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("geometry mismatch: got %v, want ErrIncompatible", err)
	}

	// Non-empty store.
	dirty := ckptStore(t, ckptGeom())
	if err := dirty.Observe(ckptObs(0)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCheckpoint(dirty, dir); err == nil {
		t.Fatal("restore into a non-empty store accepted")
	}

	// Corrupt data file: flip one byte past the frame headers.
	data := filepath.Join(dir, "checkpoint.dat")
	raw, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(data, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCheckpoint(ckptStore(t, ckptGeom()), dir); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("corrupt data: got %v, want ErrCorrupt", err)
	}

	// RemoveCheckpoint deletes the pair and is idempotent.
	if err := RemoveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointManifest(dir); !os.IsNotExist(err) {
		t.Fatalf("manifest survives removal: %v", err)
	}
	if _, err := os.Stat(data); !os.IsNotExist(err) {
		t.Fatalf("data file survives removal: %v", err)
	}
	if err := RemoveCheckpoint(dir); err != nil {
		t.Fatalf("second removal: %v", err)
	}
}

func TestFreezeAtFromCheckpointSeedsSuffix(t *testing.T) {
	topic, err := mqlog.NewBroker().CreateTopic("log", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const first, extra = 800, 300
	produce := func(from, to int) {
		for i := from; i < to; i++ {
			for _, obs := range ckptObs(i) {
				topic.Produce(obs.Key, EncodeObservation(obs))
			}
		}
	}
	produce(0, first)

	dir := t.TempDir()
	v1, err := FreezeAt(ckptGeom(), ckptProtos(t), topic, topic.EndOffsets(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1.FromCheckpoint() || v1.Restored() != 0 {
		t.Fatalf("first freeze claims a checkpoint: %+v", v1)
	}
	if _, err := v1.WriteCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	produce(first, first+extra)
	ends := topic.EndOffsets()
	v2, err := FreezeAtFrom(ckptGeom(), ckptProtos(t), topic, ends, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.FromCheckpoint() || v2.Restored() == 0 {
		t.Fatalf("second freeze ignored the checkpoint: restored=%d from=%v", v2.Restored(), v2.FromCheckpoint())
	}
	if want := uint64(extra * 4); v2.Applied() != want {
		t.Fatalf("seeded freeze applied %d, want exactly the suffix %d", v2.Applied(), want)
	}
	oracleView, err := FreezeAt(ckptGeom(), ckptProtos(t), topic, ends, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertCheckpointAgree(t, v2, oracleView, int64(first+extra-1), "seeded freeze vs full recompute")

	// A checkpoint restricted to an owned partition subset, or written
	// under an offset floor, covers [floor, off) per partition — a batch
	// view claims [0, ends), so both must be rejected, not restored.
	st := ckptStore(t, ckptGeom())
	for i := 0; i < 50; i++ {
		for _, obs := range ckptObs(i) {
			if err := st.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, meta := range map[string]CheckpointMeta{
		"owned-subset": {Offsets: ends, Partitions: []int{0, 1}},
		"floored":      {Offsets: ends, Floors: []uint64{1, 1, 1, 1}},
	} {
		sub := t.TempDir()
		if _, err := WriteCheckpoint(st, sub, meta); err != nil {
			t.Fatal(err)
		}
		v, err := FreezeAtFrom(ckptGeom(), ckptProtos(t), topic, ends, nil, sub)
		if err != nil {
			t.Fatal(err)
		}
		if v.FromCheckpoint() {
			t.Fatalf("%s checkpoint seeded a batch view", name)
		}
	}
}
