// telemetry.go wires the store into a telemetry.Registry. All counters
// and gauges are scrape-time reads of atomics and shard state the store
// already maintains — instrumentation adds zero hot-path work for them.
// The only hot-path additions are the two latency histograms (shard
// lock-wait on the write path, gather on the query path), and those are
// gated on a nil check so an unwired store is unaffected.
package store

import "repro/internal/telemetry"

// SetTelemetry registers the store's metrics with reg under the given
// label pairs (default layer="store"); pass distinguishing labels
// (e.g. layer="dstore", node="n1") when several stores share one
// registry. Safe to call again — re-registration re-binds the scrape
// callbacks to this store, which is exactly what a rebuilt cluster
// node store needs. A nil registry is a no-op.
func (s *Store) SetTelemetry(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	if len(labels) == 0 {
		labels = []string{"layer", "store"}
	}
	reg.CounterFunc("analytics_store_observations_total",
		"Observations absorbed by the store.",
		func() uint64 { return s.observed.Load() }, labels...)
	reg.CounterFunc("analytics_store_dropped_late_total",
		"Observations rejected for falling behind the ring retention window.",
		func() uint64 { return s.droppedLate.Load() }, labels...)
	reg.CounterFunc("analytics_store_queries_total",
		"Per-key range queries served.",
		func() uint64 { return s.queries.Load() }, labels...)
	reg.CounterFunc("analytics_store_evicted_size_total",
		"Entries evicted by the per-shard byte budget.",
		func() uint64 { return s.evictedSize.Load() }, labels...)
	reg.CounterFunc("analytics_store_evicted_idle_total",
		"Entries evicted by idle age.",
		func() uint64 { return s.evictedIdle.Load() }, labels...)
	reg.CounterFunc("analytics_store_splayed_writes_total",
		"Observations routed through a hot-key splay.",
		func() uint64 { return s.splayed.Load() }, labels...)
	reg.CounterFunc("analytics_store_hot_promotions_total",
		"Cold-to-splayed hot-key promotions.",
		func() uint64 { return s.promotions.Load() }, labels...)
	reg.CounterFunc("analytics_store_hot_demotions_total",
		"Splayed-to-cold hot-key demotions.",
		func() uint64 { return s.demotions.Load() }, labels...)
	reg.CounterFunc("analytics_store_bucket_seals_total",
		"Ring buckets sealed by stream time advancing.",
		func() uint64 { return s.sealCount() }, labels...)
	reg.GaugeFunc("analytics_store_entries",
		"Live entries, including splayed sub-entries.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				sh.mu.RLock()
				n += len(sh.entries)
				sh.mu.RUnlock()
			}
			return float64(n)
		}, labels...)
	reg.GaugeFunc("analytics_store_bytes",
		"Synopsis bytes resident across all shards.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				sh.mu.RLock()
				n += sh.bytes
				sh.mu.RUnlock()
			}
			return float64(n)
		}, labels...)
	reg.GaugeFunc("analytics_store_hot_keys",
		"Keys currently splayed across shards.",
		func() float64 { return float64(lenHot(s.hot.Load())) }, labels...)
	reg.GaugeFunc("analytics_store_checkpoint_bytes",
		"Data bytes of the last checkpoint written from this store.",
		func() float64 { return float64(s.ckptBytes.Load()) }, labels...)
	reg.GaugeFunc("analytics_store_checkpoint_records",
		"Bucket records in the last checkpoint written from this store.",
		func() float64 { return float64(s.ckptRecords.Load()) }, labels...)
	reg.CounterFunc("analytics_store_restored_records_total",
		"Bucket records rehydrated into this store from a checkpoint.",
		func() uint64 { return s.restored.Load() }, labels...)

	s.telLockWait = reg.Histogram("analytics_store_lock_wait_seconds",
		"Time spent acquiring the home shard write lock.",
		0, 1e-3, 64, labels...)
	s.telGather = reg.Histogram("analytics_store_gather_seconds",
		"Per-metric gather time of a range query (all requested keys).",
		0, 10e-3, 64, labels...)
}

// sealCount sums the per-shard sealed-bucket counters.
func (s *Store) sealCount() uint64 {
	var n uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.seals
		sh.mu.RUnlock()
	}
	return n
}
