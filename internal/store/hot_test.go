package store

import (
	"fmt"
	"testing"
)

// lifecycleConfig is a hot-key setup with thresholds small enough that a
// single-threaded scripted stream drives every state transition
// deterministically: SampleEvery 1 makes detection exact, EpochWrites 64
// makes epochs (and demotion sweeps) frequent, BatchWrites 8 keeps
// write-combining latency tiny.
func lifecycleConfig() Config {
	return Config{
		Shards:      8,
		BucketWidth: 10,
		RingBuckets: 32,
		HotKey: HotKeyConfig{
			Replicas:         4,
			EpochWrites:      64,
			PromotePct:       20,
			SampleEvery:      1,
			TrackerK:         8,
			MaxHot:           4,
			DemoteHysteresis: 2,
			BatchWrites:      8,
		},
	}
}

// registerExactPair registers the two synopsis families whose merges are
// exactly split-invariant (HLL register-max and Count-Min addition), so a
// splayed store and an unsplayed control must answer *identically*, not
// just within error bounds.
func registerExactPair(t *testing.T, st *Store) {
	t.Helper()
	hll, err := NewDistinctProto(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := NewFreqProto(512, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterMetric("uniq", hll); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterMetric("hits", freq); err != nil {
		t.Fatal(err)
	}
}

// assertStoresAgree compares subject and control answers for every key
// over several ranges; any divergence means splaying leaked into query
// results.
func assertStoresAgree(t *testing.T, subject, control *Store, keys []string, now int64) {
	t.Helper()
	ranges := [][2]int64{{0, now}, {0, now / 2}, {now / 2, now}, {now - 15, now}}
	for _, key := range keys {
		for _, r := range ranges {
			if r[0] < 0 {
				r[0] = 0
			}
			a, err := subject.QueryPoint("uniq", key, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			b, err := control.QueryPoint("uniq", key, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if ae, be := a.(*Distinct).Estimate(), b.(*Distinct).Estimate(); ae != be {
				t.Fatalf("uniq/%s over [%d,%d]: splayed %f != control %f", key, r[0], r[1], ae, be)
			}
			fa, err := subject.QueryPoint("hits", key, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			fb, err := control.QueryPoint("hits", key, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < 8; u++ {
				item := fmt.Sprintf("item%d", u)
				if ca, cb := fa.(*Freq).Count(item), fb.(*Freq).Count(item); ca != cb {
					t.Fatalf("hits/%s %s over [%d,%d]: splayed %d != control %d", key, item, r[0], r[1], ca, cb)
				}
			}
		}
	}
}

// TestHotKeyLifecycleMatchesControl drives a scripted key distribution
// through the full hot-entry state machine — cold, promotion, splayed
// writes (including late ones), demotion, and post-demotion writes — and
// asserts at every stage that the splayed store's query results are
// identical to an unsplayed control store fed the same stream. This is
// the ISSUE's acceptance invariant: splaying must be invisible to reads.
func TestHotKeyLifecycleMatchesControl(t *testing.T) {
	subject := mustStore(t, lifecycleConfig())
	cfg := lifecycleConfig()
	cfg.HotKey = HotKeyConfig{}
	control := mustStore(t, cfg)
	registerExactPair(t, subject)
	registerExactPair(t, control)

	cold := make([]string, 8)
	for i := range cold {
		cold[i] = fmt.Sprintf("bg%d", i)
	}
	allKeys := append([]string{"hot"}, cold...)

	var now int64
	feed := func(key, item string, ts int64) {
		t.Helper()
		obs := Observation{Metric: "uniq", Key: key, Item: item, Time: ts}
		if err := subject.Observe(obs); err != nil {
			t.Fatal(err)
		}
		if err := control.Observe(obs); err != nil {
			t.Fatal(err)
		}
		obs.Metric = "hits"
		obs.Value = 1
		if err := subject.Observe(obs); err != nil {
			t.Fatal(err)
		}
		if err := control.Observe(obs); err != nil {
			t.Fatal(err)
		}
		if ts > now {
			now = ts
		}
	}

	// Phase A — promotion: the hot key takes ~80% of a skewed stream.
	for i := 0; i < 600; i++ {
		ts := int64(i / 4)
		if i%5 != 4 {
			feed("hot", fmt.Sprintf("item%d", i%8), ts)
		} else {
			feed(cold[i%len(cold)], fmt.Sprintf("item%d", i%8), ts)
		}
	}
	if st := subject.Stats(); st.Promotions == 0 || st.HotKeys == 0 {
		t.Fatalf("hot key never promoted: %+v", st)
	}
	hotKeys := subject.HotKeys()
	found := false
	for _, hk := range hotKeys {
		if hk.Key == "hot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("HotKeys() %v does not include the scripted hot key", hotKeys)
	}
	assertStoresAgree(t, subject, control, allKeys, now)

	// Phase B — splayed writes, including in-window late writes that
	// exercise the copy-on-write path on both replica and home rings.
	base := now
	for i := 0; i < 600; i++ {
		ts := base + int64(i/4)
		if i%7 == 6 && ts > 20 {
			ts -= 20 // late, but well inside the 32-bucket window
		}
		if i%5 != 4 {
			feed("hot", fmt.Sprintf("item%d", i%8), ts)
		} else {
			feed(cold[i%len(cold)], fmt.Sprintf("item%d", i%8), ts)
		}
	}
	if st := subject.Stats(); st.SplayedWrites == 0 {
		t.Fatalf("no splayed writes recorded while hot: %+v", st)
	}
	assertStoresAgree(t, subject, control, allKeys, now)

	// Phase C — demotion: the hot key goes quiet while keys homed on the
	// same shards keep its detection epochs rolling. Each metric's entry
	// for "hot" homes on its own shard (the hash covers the metric), so
	// pick rolling keys that cover both homes.
	uniqHome := subject.shardIndex(entryKey{metric: "uniq", key: "hot"})
	hitsHome := subject.shardIndex(entryKey{metric: "hits", key: "hot"})
	var sameShard []string
	for i := 0; len(sameShard) < 6; i++ {
		k := fmt.Sprintf("roll%d", i)
		u := subject.shardIndex(entryKey{metric: "uniq", key: k})
		h := subject.shardIndex(entryKey{metric: "hits", key: k})
		if u == uniqHome || h == hitsHome {
			sameShard = append(sameShard, k)
		}
	}
	hotRouted := func() bool {
		for _, hk := range subject.HotKeys() {
			if hk.Key == "hot" {
				return true
			}
		}
		return false
	}
	base = now
	for i := 0; i < 8000 && hotRouted(); i++ {
		ts := base + int64(i/8)
		feed(sameShard[i%len(sameShard)], fmt.Sprintf("item%d", i%8), ts)
	}
	st := subject.Stats()
	if st.Demotions == 0 || hotRouted() {
		t.Fatalf("hot key never demoted: %+v (hot keys %v)", st, subject.HotKeys())
	}
	assertStoresAgree(t, subject, control, append(allKeys, sameShard...), now)

	// Phase D — post-demotion writes take the plain path and still agree.
	base = now
	for i := 0; i < 200; i++ {
		feed("hot", fmt.Sprintf("item%d", i%8), base+int64(i/8))
	}
	assertStoresAgree(t, subject, control, allKeys, now)

	// Splaying must also be invisible to key listings: every key once.
	seen := map[string]int{}
	for _, k := range subject.Keys("uniq") {
		seen[k]++
	}
	if seen["hot"] != 1 {
		t.Fatalf("hot key listed %d times in Keys()", seen["hot"])
	}
}

// TestHotKeySilentHomeDemotion pins the silent-route lifecycle: a
// promoted key goes completely quiet along with everything else homed
// on its shards, so its own detection epochs never roll again — and
// epoch rolls on OTHER shards alone must still demote the route (the
// foreign silence check) instead of pinning dead replica rings
// forever. Single-threaded, so the DemoteHysteresis streak is an exact
// roll count.
func TestHotKeySilentHomeDemotion(t *testing.T) {
	subject := mustStore(t, lifecycleConfig())
	cfg := lifecycleConfig()
	cfg.HotKey = HotKeyConfig{}
	control := mustStore(t, cfg)
	registerExactPair(t, subject)
	registerExactPair(t, control)

	var now int64
	feed := func(key, item string, ts int64) {
		t.Helper()
		obs := Observation{Metric: "uniq", Key: key, Item: item, Time: ts}
		for _, st := range []*Store{subject, control} {
			if err := st.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
		obs.Metric = "hits"
		obs.Value = 1
		for _, st := range []*Store{subject, control} {
			if err := st.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
		if ts > now {
			now = ts
		}
	}
	hotRouted := func() bool {
		for _, hk := range subject.HotKeys() {
			if hk.Key == "hot" {
				return true
			}
		}
		return false
	}

	// Phase A — promote "hot" with a skewed stream (as the main
	// lifecycle test does).
	cold := make([]string, 8)
	for i := range cold {
		cold[i] = fmt.Sprintf("bg%d", i)
	}
	for i := 0; i < 600; i++ {
		ts := int64(i / 4)
		if i%5 != 4 {
			feed("hot", fmt.Sprintf("item%d", i%8), ts)
		} else {
			feed(cold[i%len(cold)], fmt.Sprintf("item%d", i%8), ts)
		}
	}
	if !hotRouted() {
		t.Fatalf("hot key never promoted: %+v", subject.Stats())
	}

	// Phase B — total silence on the hot key's home shards: every write
	// from here on lands on keys foreign to BOTH of its routes (one per
	// metric), so only foreign epoch rolls can ever judge them.
	uniqHome := subject.shardIndex(entryKey{metric: "uniq", key: "hot"})
	hitsHome := subject.shardIndex(entryKey{metric: "hits", key: "hot"})
	var foreign []string
	for i := 0; len(foreign) < 8; i++ {
		k := fmt.Sprintf("far%d", i)
		u := subject.shardIndex(entryKey{metric: "uniq", key: k})
		h := subject.shardIndex(entryKey{metric: "hits", key: k})
		if u != uniqHome && h != hitsHome && u != hitsHome && h != uniqHome {
			foreign = append(foreign, k)
		}
	}
	demotionsBefore := subject.Stats().Demotions
	base := now
	i := 0
	for ; i < 20000 && hotRouted(); i++ {
		feed(foreign[i%len(foreign)], fmt.Sprintf("item%d", i%8), base+int64(i/8))
	}
	if hotRouted() {
		t.Fatalf("silent route survived %d foreign writes: %+v (hot keys %v)",
			i, subject.Stats(), subject.HotKeys())
	}
	if d := subject.Stats().Demotions; d <= demotionsBefore {
		t.Fatalf("Demotions did not advance across the silent demotion: %d -> %d", demotionsBefore, d)
	}

	// The demotion drained every replica ring home: answers must still
	// match the unsplayed control exactly, including the quiet key's
	// full history.
	assertStoresAgree(t, subject, control, append([]string{"hot"}, foreign...), now)

	// Phase C — the key coming back takes the plain path and still
	// agrees (and may be re-promoted later; either way reads match).
	base = now
	for j := 0; j < 200; j++ {
		feed("hot", fmt.Sprintf("item%d", j%8), base+int64(j/8))
	}
	assertStoresAgree(t, subject, control, []string{"hot"}, now)
}

func TestHotKeyConfigValidation(t *testing.T) {
	for _, bad := range []HotKeyConfig{
		{Replicas: -1},
		{Replicas: 2, EpochWrites: -1},
		{Replicas: 2, PromotePct: -1},
		{Replicas: 2, PromotePct: 101},
		{Replicas: 2, SampleEvery: -1},
		{Replicas: 2, TrackerK: -1},
		{Replicas: 2, MaxHot: -1},
		{Replicas: 2, DemoteHysteresis: -1},
		{Replicas: 2, BatchWrites: -1},
	} {
		if _, err := New(Config{HotKey: bad}); err == nil {
			t.Fatalf("invalid hot-key config accepted: %+v", bad)
		}
	}
	// Replicas clamp to the shard count; a single-shard store disables
	// splaying entirely (nothing to spread across).
	st := mustStore(t, Config{Shards: 1, BucketWidth: 10, RingBuckets: 8,
		HotKey: HotKeyConfig{Replicas: 64, EpochWrites: 16, PromotePct: 1, SampleEvery: 1}})
	registerUniques(t, st)
	for i := 0; i < 1000; i++ {
		if err := st.Observe(Observation{Metric: "uniques", Key: "k", Item: fmt.Sprintf("i%d", i), Time: int64(i / 50)}); err != nil {
			t.Fatal(err)
		}
	}
	if stats := st.Stats(); stats.Promotions != 0 || stats.HotKeys != 0 {
		t.Fatalf("single-shard store promoted a key: %+v", stats)
	}
}

func TestHotKeyMaxHotCap(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.HotKey.MaxHot = 2
	st := mustStore(t, cfg)
	registerUniques(t, st)
	// Ten keys each hot enough to promote; the table must stop at two.
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", i%10)
		if err := st.Observe(Observation{Metric: "uniques", Key: key, Item: "x", Time: int64(i / 100)}); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.HotKeys > 2 {
		t.Fatalf("hot table exceeded MaxHot: %+v", stats)
	}
	if stats.Promotions == 0 {
		t.Fatalf("no promotions at all: %+v", stats)
	}
}

// Sub-entries count against the shard byte budgets like any entry: a
// splayed store under a budget stays within it and still evicts.
func TestHotKeySubEntriesRespectByteBudget(t *testing.T) {
	cfg := lifecycleConfig()
	// Keep a full ring (~8 x 4KB) under the budget: eviction keeps at
	// least one entry per shard, so the bound below only holds when any
	// single entry fits the budget.
	cfg.RingBuckets = 8
	cfg.MaxShardBytes = 64 << 10
	st := mustStore(t, cfg)
	registerUniques(t, st) // precision 12: ~4KB per bucket synopsis
	for i := 0; i < 30000; i++ {
		key := fmt.Sprintf("k%d", i%40)
		if i%3 != 2 {
			key = "hot"
		}
		if err := st.Observe(Observation{Metric: "uniques", Key: key, Item: fmt.Sprintf("i%d", i%64), Time: int64(i / 100)}); err != nil {
			t.Fatal(err)
		}
	}
	st.FlushHot()
	stats := st.Stats()
	if max := cfg.MaxShardBytes * st.Shards(); stats.Bytes > max {
		t.Fatalf("bytes %d exceed total budget %d: %+v", stats.Bytes, max, stats)
	}
	if stats.EvictedSize == 0 {
		t.Fatalf("budget never evicted: %+v", stats)
	}
}

// Observed counts settle once pending write-combining batches flush;
// FlushHot forces that settlement, and queries drain the key they touch.
func TestHotKeyFlushAndQueryDrainPending(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.HotKey.BatchWrites = 64 // large enough to leave a visible backlog
	st := mustStore(t, cfg)
	registerUniques(t, st)
	total := 0
	feed := func(n int, key string) {
		for i := 0; i < n; i++ {
			if err := st.Observe(Observation{Metric: "uniques", Key: key, Item: fmt.Sprintf("i%d", total), Time: 5}); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	feed(600, "hot")
	if st.Stats().HotKeys == 0 {
		t.Fatal("key never promoted")
	}
	feed(30, "hot") // strictly less than one batch: stays pending
	if got := st.Stats().Observed; got == uint64(total) {
		t.Fatalf("expected a pending backlog, all %d writes already flushed", got)
	}
	// A query of the hot key drains its pending batch first.
	syn, err := st.QueryPoint("uniques", "hot", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est, want := syn.(*Distinct).Estimate(), float64(total); est < want*0.9 || est > want*1.1 {
		t.Fatalf("post-drain estimate %f far from %f", est, want)
	}
	feed(30, "hot")
	st.FlushHot()
	if got := st.Stats().Observed; got != uint64(total) {
		t.Fatalf("FlushHot settled %d of %d writes", got, total)
	}
}

// A splayed key's home entry receives no direct writes, but it holds the
// key's pre-promotion history: the flush path must keep it recency-fresh
// so idle/byte eviction treats the store's hottest key like the unsplayed
// store would — not as its least-recently-written victim.
func TestHotKeyHomeEntrySurvivesIdleEviction(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.MaxIdle = 100
	st := mustStore(t, cfg)
	registerUniques(t, st)
	// Build pre-promotion history, then promote.
	for i := 0; i < 600; i++ {
		if err := st.Observe(Observation{Metric: "uniques", Key: "hot", Item: fmt.Sprintf("old%d", i), Time: int64(i / 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().HotKeys == 0 {
		t.Fatal("key never promoted")
	}
	// Splayed traffic plus other keys advancing every shard's clock far
	// past MaxIdle relative to the home entry's frozen lastWrite.
	for i := 0; i < 4000; i++ {
		ts := int64(60 + i/8)
		if err := st.Observe(Observation{Metric: "uniques", Key: "hot", Item: fmt.Sprintf("new%d", i), Time: ts}); err != nil {
			t.Fatal(err)
		}
		if err := st.Observe(Observation{Metric: "uniques", Key: fmt.Sprintf("bg%d", i%12), Item: "x", Time: ts}); err != nil {
			t.Fatal(err)
		}
	}
	// The hot key stays resident (its history inside the ring window is
	// still queryable) and listed exactly once.
	count := 0
	for _, k := range st.Keys("uniques") {
		if k == "hot" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("hot key listed %d times after idle churn (stats %+v)", count, st.Stats())
	}
	syn, err := st.QueryPoint("uniques", "hot", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if est := syn.(*Distinct).Estimate(); est < 100 {
		t.Fatalf("hot key history lost to idle eviction: estimate %f", est)
	}
}
