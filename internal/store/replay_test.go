package store

import (
	"fmt"
	"testing"

	"repro/internal/mqlog"
)

// replayFixture builds a topic carrying n encoded observations over parts
// partitions (keyed so each series sticks to one partition) plus a store
// factory with a distinct-count metric registered.
func replayFixture(t *testing.T, parts, retention, n int) (*mqlog.Broker, *mqlog.Topic, func() *Store) {
	t.Helper()
	broker := mqlog.NewBroker()
	topic, err := broker.CreateTopic("events", parts, retention)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		obs := Observation{
			Metric: "uniq",
			Key:    fmt.Sprintf("k%d", i%7),
			Item:   fmt.Sprintf("u%d", i),
			Time:   int64(i),
		}
		topic.Produce(obs.Key, EncodeObservation(obs))
	}
	proto, err := NewDistinctProto(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	newStore := func() *Store {
		st, err := New(Config{Shards: 4, BucketWidth: 100, RingBuckets: 64})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.RegisterMetric("uniq", proto); err != nil {
			t.Fatal(err)
		}
		return st
	}
	return broker, topic, newStore
}

func queryEstimate(t *testing.T, st *Store, key string, to int64) float64 {
	t.Helper()
	syn, err := st.QueryPoint("uniq", key, 0, to)
	if err != nil {
		t.Fatal(err)
	}
	return syn.(*Distinct).Estimate()
}

// TestReplayResumesFromCommittedOffsets is the consumer-restart story: a
// store consumes half the log, commits its positions through a consumer
// group, "restarts" (same store, the positions survive in the broker), and
// resumes replaying from the committed offsets. Nothing may be double-
// counted and nothing skipped: the total applied count is exactly the log
// size and every query answer matches a store that replayed in one pass.
func TestReplayResumesFromCommittedOffsets(t *testing.T) {
	const total = 2000
	broker, topic, newStore := replayFixture(t, 4, 0, total)
	group, err := mqlog.NewConsumerGroup(broker, topic, "speed")
	if err != nil {
		t.Fatal(err)
	}
	group.Join("node-0")

	st := newStore()
	var applied uint64
	// First leg: consume roughly half of each partition the way a live
	// consumer does — fetch, apply, commit the next offset — then "crash"
	// with the store intact and the positions durable in the broker.
	for pid := 0; pid < topic.Partitions(); pid++ {
		mid := topic.EndOffset(pid) / 2
		if mid == 0 {
			// Nothing routed here (or a single message): Fetch rejects
			// max <= 0 by contract, so there is no half-consumed leg.
			continue
		}
		msgs, next, _, err := topic.Fetch(pid, 0, int(mid))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			obs, ok := WireDecoder(m)
			if !ok {
				t.Fatalf("undecodable message at pid %d offset %d", pid, m.Offset)
			}
			if err := st.Observe(obs); err != nil {
				t.Fatal(err)
			}
			applied++
		}
		group.Commit(pid, next)
	}

	// Restart leg: resume each partition from its committed offset.
	for pid := 0; pid < topic.Partitions(); pid++ {
		from := broker.Committed("speed", "events", pid)
		next, n, truncated, err := ReplayPartition(st, topic, pid, from, nil)
		if err != nil {
			t.Fatal(err)
		}
		if truncated {
			t.Fatalf("pid %d: unexpected truncation on an unbounded topic", pid)
		}
		if next != topic.EndOffset(pid) {
			t.Fatalf("pid %d: resumed replay stopped at %d, end is %d", pid, next, topic.EndOffset(pid))
		}
		applied += n
		group.Commit(pid, next)
	}
	if applied != total {
		t.Fatalf("two-leg replay applied %d observations, log has %d (double count or skip)", applied, total)
	}
	if lag := broker.Lag("speed", topic); lag != 0 {
		t.Fatalf("lag %d after full resume", lag)
	}

	// One-pass oracle.
	oracle := newStore()
	if n, err := Replay(oracle, topic, nil); err != nil || n != total {
		t.Fatalf("oracle replay: n=%d err=%v", n, err)
	}
	for k := 0; k < 7; k++ {
		key := fmt.Sprintf("k%d", k)
		got, want := queryEstimate(t, st, key, total), queryEstimate(t, oracle, key, total)
		if got != want {
			t.Fatalf("key %s: resumed store %v != one-pass oracle %v", key, got, want)
		}
	}
}

// TestReplayPartitionTruncatedOffset is the retention race: the committed
// offset points below the oldest retained message, so the resume must
// report truncation, restart at the earliest retained offset (never loop
// or double-read), and apply exactly the retained suffix.
func TestReplayPartitionTruncatedOffset(t *testing.T) {
	const retention = 64
	_, topic, newStore := replayFixture(t, 1, retention, 500)
	if start := topic.StartOffset(0); start == 0 {
		t.Fatal("retention did not truncate the partition")
	}
	st := newStore()
	next, n, truncated, err := ReplayPartition(st, topic, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("replay from a truncated offset did not report truncation")
	}
	if n != retention {
		t.Fatalf("applied %d observations, retained suffix is %d", n, retention)
	}
	if next != topic.EndOffset(0) {
		t.Fatalf("next %d != end %d", next, topic.EndOffset(0))
	}
}

// TestReplayPartitionValidation pins the error surface.
func TestReplayPartitionValidation(t *testing.T) {
	_, topic, newStore := replayFixture(t, 1, 0, 10)
	if _, _, _, err := ReplayPartition(nil, topic, 0, 0, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, _, _, err := ReplayPartition(newStore(), nil, 0, 0, nil); err == nil {
		t.Fatal("nil topic accepted")
	}
	if _, _, _, err := ReplayPartition(newStore(), topic, 9, 0, nil); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}
