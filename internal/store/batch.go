// batch.go is the store's amortized write path: ObserveBatch lands a
// whole slice of observations with one shard-lock acquisition per shard
// group instead of one per observation, the write-side analogue of the
// query path's single-RLock per-shard gather.
package store

import (
	"time"

	"repro/internal/core"
)

// ObserveBatch absorbs obs as one batched write. The entire batch is
// validated first — every metric registered, every time non-negative —
// and a validation failure absorbs NOTHING (stricter than a loop of
// Observe, which mutates the prefix; this is what makes admission
// shedding provable). An accepted batch is byte-identical to feeding
// the same observations through Observe one at a time: observations
// are grouped by home shard preserving input order — per-(metric,key)
// order is what synopsis state depends on, and a key's writes all land
// in the same group — and inside a group every per-write effect of the
// plain path runs identically (late-drop accounting, ring advance,
// eviction, hot-key sampling and epoch harvests). Writes to currently
// hot keys divert to their routes' lock-free batches exactly as
// Observe does, outside the shard lock. An empty batch is a no-op.
func (s *Store) ObserveBatch(obs []Observation) error {
	if len(obs) == 0 {
		return nil
	}
	protos := make(map[string]Prototype, 4)
	for i := range obs {
		o := &obs[i]
		if o.Time < 0 {
			return core.Errf("Store", "Time", "%d must be >= 0", o.Time)
		}
		if _, ok := protos[o.Metric]; !ok {
			p, err := s.proto(o.Metric)
			if err != nil {
				return err
			}
			protos[o.Metric] = p
		}
	}
	// Group by home shard, preserving input order within each group.
	groups := make([][]int, len(s.shards))
	for i := range obs {
		idx := s.shardIndex(entryKey{metric: obs[i].Metric, key: obs[i].Key})
		groups[idx] = append(groups[idx], i)
	}
	for idx, group := range groups {
		if len(group) > 0 {
			s.observeShardBatch(uint32(idx), group, obs, protos)
		}
	}
	return nil
}

// observeShardBatch lands one shard's group. The shard lock is held
// across runs of cold writes and released around hot-route diversions
// (observeHot seals and flushes batches, which takes shard locks of its
// own). Epoch harvests collected under the lock run their sweeps and
// promotions after release, in harvest order, exactly like the plain
// path.
func (s *Store) observeShardBatch(idx uint32, group []int, obs []Observation, protos map[string]Prototype) {
	type harvest struct {
		promote []entryKey
		seq     uint64
	}
	sh := s.shards[idx]
	var harvests []harvest
	var observed, droppedLate uint64
	locked := false
	lock := func() {
		if !locked {
			if h := s.telLockWait; h != nil {
				t0 := time.Now()
				sh.mu.Lock()
				h.ObserveSince(t0)
			} else {
				sh.mu.Lock()
			}
			locked = true
		}
	}
	unlock := func() {
		if locked {
			sh.mu.Unlock()
			locked = false
		}
	}
	for _, i := range group {
		o := obs[i]
		k := entryKey{metric: o.Metric, key: o.Key}
		var r *hotRoute
		if r = s.hotRouteFor(k); r != nil {
			unlock()
			if s.observeHot(o, k, r) {
				continue
			}
			// Demoted mid-flight or batch mid-seal: take the home path
			// anchored to the route's high water, like Observe.
		}
		lock()
		if o.Time > sh.maxTime {
			sh.maxTime = o.Time
		}
		e := sh.getOrCreate(k, s.cfg.RingBuckets, false)
		if r != nil {
			if anchor := r.newest.Load(); anchor > e.newest {
				e.advance(anchor, sh)
			}
		}
		dropped, err := s.writeLocked(sh, e, o, protos[o.Metric])
		if err != nil {
			// Unreachable after up-front validation (only a copy-on-write
			// clone of a mismatched family can fail, impossible within one
			// metric); skip the write rather than strand the batch.
			continue
		}
		if dropped {
			droppedLate++
			continue
		}
		if s.hotEnabled() {
			sh.epochWrites++
			if sh.epochWrites%s.cfg.HotKey.SampleEvery == 0 {
				sh.tracker.Update(packHotKey(k))
			}
			if sh.epochWrites >= s.cfg.HotKey.EpochWrites {
				promote, seq := s.harvestLocked(sh)
				harvests = append(harvests, harvest{promote, seq})
			}
		}
		s.evict(sh)
		observed++
	}
	unlock()
	s.observed.Add(observed)
	s.droppedLate.Add(droppedLate)
	for _, h := range harvests {
		// Sweep before promoting, matching the plain path: a just-promoted
		// route must not be judged on an empty epoch.
		s.sweepRoutes(idx, h.seq)
		for _, pk := range h.promote {
			s.promote(pk)
		}
	}
}
