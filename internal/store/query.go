// query.go is the store's half of the unified serving API: the typed
// request/response model every serving layer in this repository answers
// through (analytics.Backend). A QueryRequest names one or more metrics,
// one/many/all keys, a half-open [From, To) stream-time range and an
// aggregate-vs-per-key flag; a QueryResult carries one Answer per
// requested cell with typed accessors per synopsis family, so callers
// stop type-asserting store.Synopsis at every call site.
//
// Batching is the point, not a convenience: a multi-key request against
// the store groups its cold keys by home shard and gathers every key of a
// shard under ONE read-lock acquisition (fanning the shards out in
// parallel when more than one is involved), where N point queries would
// pay N lock round-trips. Hot (splayed) keys take the same settle+gather
// path a point query takes, key by key, because their buckets live under
// the hot-key lock. The per-key answers a batched gather produces are
// byte-identical to the point path's: same prototype construction, same
// slot visit order, same open-under-lock / sealed-outside merge split.
//
// Aggregate answers merge the per-key synopses in sorted key order
// through CombineSnapshots, so Aggregate is deterministically equal to
// "per-key Query + CombineSnapshots" — the property the cluster's
// scatter-gather parity test pins byte for byte.
package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/trace"
)

// ErrUnknownMetric is the sentinel every serving backend (store, cluster
// router, Lambda) wraps when a request names a metric that was never
// registered. The unified contract (see analytics.Backend): an unknown
// metric is an error carrying this sentinel; a registered metric with no
// data for the requested key/range is an empty answer, never an error.
var ErrUnknownMetric = errors.New("unknown metric")

// QueryRequest describes one serving-API query. The zero value is not
// valid: a request must name at least one metric (Metric or Metrics) and
// a non-empty time range.
type QueryRequest struct {
	// Metric names the single metric to query. Ignored when Metrics is
	// non-empty.
	Metric string
	// Metrics names several metrics to query in one request; answers come
	// back grouped per metric, in this order (duplicates removed).
	Metrics []string

	// Key names the single key to query. Ignored when Keys is non-empty
	// or AllKeys is set.
	Key string
	// Keys names several keys; answers come back in sorted key order,
	// duplicates removed (a union names each series once).
	Keys []string
	// AllKeys queries every key currently resident for each metric,
	// overriding Key/Keys.
	AllKeys bool

	// From and To bound the stream-time range, half-open: [From, To).
	From int64
	To   int64

	// Aggregate collapses each metric's per-key answers into one combined
	// answer (per-key synopses merged in sorted key order through
	// CombineSnapshots) instead of returning one answer per key.
	Aggregate bool

	// Trace carries the request's trace context when the request is
	// being traced (zero otherwise). Backends attach their stage spans
	// — per-shard gathers, scatter rounds, layer merges — as children
	// of it. Normalize preserves it; it is not part of any wire format.
	Trace trace.Context
}

// Normalize returns the canonical form of the request — Metrics populated
// (Metric folded in, duplicates dropped, order preserved), Keys sorted and
// deduplicated (nil when AllKeys) — after validating the range. Backends
// normalize on entry; calling it again is a no-op.
func (r QueryRequest) Normalize() (QueryRequest, error) {
	if r.To <= r.From {
		return r, core.Errf("QueryRequest", "range", "[%d, %d) is empty", r.From, r.To)
	}
	metrics := r.Metrics
	if len(metrics) == 0 {
		metrics = []string{r.Metric}
	}
	seen := make(map[string]struct{}, len(metrics))
	dedup := make([]string, 0, len(metrics))
	for _, m := range metrics {
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		dedup = append(dedup, m)
	}
	r.Metrics, r.Metric = dedup, ""
	if r.AllKeys {
		r.Keys, r.Key = nil, ""
		return r, nil
	}
	keys := r.Keys
	if len(keys) == 0 {
		keys = []string{r.Key}
	}
	keys = append([]string(nil), keys...)
	slices.Sort(keys)
	r.Keys, r.Key = slices.Compact(keys), ""
	return r, nil
}

// PointRequest is the QueryRequest a legacy point query maps to: one
// metric, one key, the inclusive range [from, to] widened to the half-open
// [from, to+1) the new API speaks (clamped at the int64 horizon).
func PointRequest(metric, key string, from, to int64) QueryRequest {
	if to != math.MaxInt64 {
		to++
	}
	return QueryRequest{Metric: metric, Key: key, From: from, To: to}
}

// Family identifies which synopsis family an Answer holds, and therefore
// which typed accessors are meaningful on it.
type Family uint8

const (
	// FamilyOther is any custom Synopsis the store has no typed view for;
	// use Answer.Raw.
	FamilyOther Family = iota
	// FamilyDistinct is a cardinality synopsis (*Distinct): Distinct().
	FamilyDistinct
	// FamilyFreq is a per-item frequency synopsis (*Freq): Count(item).
	FamilyFreq
	// FamilyTopK is a heavy-hitter synopsis (*TopK): TopK(k), Count(item).
	FamilyTopK
	// FamilyQuantile is a value-distribution synopsis (*Quantiles):
	// Quantile(phi).
	FamilyQuantile
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyDistinct:
		return "distinct"
	case FamilyFreq:
		return "freq"
	case FamilyTopK:
		return "topk"
	case FamilyQuantile:
		return "quantile"
	default:
		return "other"
	}
}

// familyOf classifies a synopsis by its concrete adapter type.
func familyOf(s Synopsis) Family {
	switch s.(type) {
	case *Distinct:
		return FamilyDistinct
	case *Freq:
		return FamilyFreq
	case *TopK:
		return FamilyTopK
	case *Quantiles:
		return FamilyQuantile
	default:
		return FamilyOther
	}
}

// Answer is one cell of a QueryResult: the merged synopsis for one
// (metric, key) series, or — when the request aggregated — for the union
// of a metric's requested keys. The typed accessors answer zero values
// when asked a question the underlying family cannot answer (check
// Family, or use Raw for the escape hatch); an Answer whose series was
// never written is an empty synopsis, not an error.
type Answer struct {
	// Metric is the metric this answer belongs to.
	Metric string
	// Key is the series key, or "" for an aggregate answer.
	Key string
	// Aggregate marks the combined answer of a metric's key union.
	Aggregate bool

	syn Synopsis
}

// NewAnswer assembles one per-key answer cell — the constructor backend
// implementations outside this package build QueryResults with.
func NewAnswer(metric, key string, syn Synopsis) Answer {
	return Answer{Metric: metric, Key: key, syn: syn}
}

// NewAggregateAnswer assembles one aggregate answer cell.
func NewAggregateAnswer(metric string, syn Synopsis) Answer {
	return Answer{Metric: metric, Aggregate: true, syn: syn}
}

// Raw returns the merged synopsis itself — the escape hatch for custom
// families and for callers that need Merge/Bytes. Nil only on the zero
// Answer.
func (a Answer) Raw() Synopsis { return a.syn }

// Family reports which synopsis family the answer holds.
func (a Answer) Family() Family {
	if a.syn == nil {
		return FamilyOther
	}
	return familyOf(a.syn)
}

// Items reports how many observations the answer's synopsis absorbed
// (0 for a never-written series).
func (a Answer) Items() uint64 {
	if a.syn == nil {
		return 0
	}
	return a.syn.Items()
}

// Distinct returns the estimated distinct count for a FamilyDistinct
// answer, rounded to the nearest integer; 0 for other families.
func (a Answer) Distinct() uint64 {
	if d, ok := a.syn.(*Distinct); ok {
		return uint64(math.Round(d.Estimate()))
	}
	return 0
}

// Count returns the estimated occurrence count of item for FamilyFreq and
// FamilyTopK answers; 0 for other families.
func (a Answer) Count(item string) uint64 {
	switch s := a.syn.(type) {
	case *Freq:
		return s.Count(item)
	case *TopK:
		return s.Count(item)
	default:
		return 0
	}
}

// TopK returns the k highest-count items of a FamilyTopK answer; nil for
// other families.
func (a Answer) TopK(k int) []frequency.Counted {
	if t, ok := a.syn.(*TopK); ok {
		return t.Top(k)
	}
	return nil
}

// Quantile returns the estimated phi-quantile of a FamilyQuantile
// answer's observed values; 0 for other families.
func (a Answer) Quantile(phi float64) uint64 {
	if q, ok := a.syn.(*Quantiles); ok {
		return q.Quantile(phi)
	}
	return 0
}

// QueryResult is the typed response of a serving-API query: one Answer
// per requested (metric, key) cell — or per metric when the request
// aggregated — ordered by the request's metric order, then sorted key
// order. For the common single-cell request the accessors on QueryResult
// itself delegate to the first (only) answer, so
//
//	res, _ := be.Query(store.QueryRequest{Metric: "uniques", Key: "home", From: 0, To: 60})
//	res.Distinct()
//
// reads exactly like the old point query, minus the type assertion.
type QueryResult struct {
	answers []Answer
}

// NewQueryResult assembles a result from answer cells — the constructor
// backend implementations outside this package use.
func NewQueryResult(answers []Answer) QueryResult { return QueryResult{answers: answers} }

// Answers returns every answer cell, in request order (metrics in request
// order, keys sorted). The slice is the result's backing array; treat it
// as read-only.
func (r QueryResult) Answers() []Answer { return r.answers }

// RawSynopses unwraps every answer cell into its merged synopsis, in
// answer order — the bridge for code (backend internals, combiners)
// that moves synopses rather than typed answers.
func (r QueryResult) RawSynopses() []Synopsis {
	out := make([]Synopsis, len(r.answers))
	for i, a := range r.answers {
		out[i] = a.syn
	}
	return out
}

// Len returns the number of answer cells.
func (r QueryResult) Len() int { return len(r.answers) }

// At returns the answer for one (metric, key) cell. For aggregate
// requests, key is "" (see Aggregate on Answer).
func (r QueryResult) At(metric, key string) (Answer, bool) {
	for _, a := range r.answers {
		if a.Metric == metric && a.Key == key {
			return a, true
		}
	}
	return Answer{}, false
}

// first returns the first answer cell, or the zero Answer.
func (r QueryResult) first() Answer {
	if len(r.answers) == 0 {
		return Answer{}
	}
	return r.answers[0]
}

// Raw returns the first answer's synopsis (see Answer.Raw).
func (r QueryResult) Raw() Synopsis { return r.first().Raw() }

// Family returns the first answer's synopsis family.
func (r QueryResult) Family() Family { return r.first().Family() }

// Items returns the first answer's absorbed-observation count.
func (r QueryResult) Items() uint64 { return r.first().Items() }

// Distinct returns the first answer's estimated distinct count.
func (r QueryResult) Distinct() uint64 { return r.first().Distinct() }

// Count returns the first answer's estimated count of item.
func (r QueryResult) Count(item string) uint64 { return r.first().Count(item) }

// TopK returns the first answer's k heaviest items.
func (r QueryResult) TopK(k int) []frequency.Counted { return r.first().TopK(k) }

// Quantile returns the first answer's estimated phi-quantile.
func (r QueryResult) Quantile(phi float64) uint64 { return r.first().Quantile(phi) }

// ---- Store implementation ----

// Query answers one serving-API request (see QueryRequest): every
// requested (metric, key) cell is range-merged exactly as QueryPoint
// would, but cold keys sharing a shard are gathered under one read-lock
// acquisition and distinct shards gather in parallel, so a multi-key
// request costs one lock round-trip per touched shard instead of one per
// key. Unknown metrics fail with ErrUnknownMetric; series the store never
// saw answer empty synopses.
func (s *Store) Query(req QueryRequest) (QueryResult, error) {
	return s.QueryContext(context.Background(), req)
}

// queryCancelled wraps a context error so errors.Is still sees
// context.Canceled / context.DeadlineExceeded through the wrap.
func queryCancelled(err error) error {
	return fmt.Errorf("store: query cancelled: %w", err)
}

// QueryContext is Query honoring a deadline: the gather checks ctx
// between metrics and before each per-shard lock acquisition, so a
// cancelled or expired context aborts the fan-out early (returning an
// error wrapping ctx.Err()) instead of merging buckets nobody is
// waiting for. The store's state is read-only on this path, so an
// aborted query leaves nothing to clean up. context.Background()
// recovers plain Query exactly.
func (s *Store) QueryContext(ctx context.Context, req QueryRequest) (QueryResult, error) {
	req, err := req.Normalize()
	if err != nil {
		return QueryResult{}, err
	}
	fromB := req.From / s.cfg.BucketWidth
	toB := (req.To - 1) / s.cfg.BucketWidth
	var answers []Answer
	for _, metric := range req.Metrics {
		if err := ctx.Err(); err != nil {
			return QueryResult{}, queryCancelled(err)
		}
		proto, err := s.proto(metric)
		if err != nil {
			return QueryResult{}, err
		}
		keys := req.Keys
		if req.AllKeys {
			keys = append([]string(nil), s.Keys(metric)...)
			slices.Sort(keys)
			keys = slices.Compact(keys)
		}
		var syns []Synopsis
		if h := s.telGather; h != nil {
			t0 := time.Now()
			syns, err = s.queryKeys(ctx, metric, proto, keys, fromB, toB, req.Trace)
			h.ObserveSince(t0)
		} else {
			syns, err = s.queryKeys(ctx, metric, proto, keys, fromB, toB, req.Trace)
		}
		if err != nil {
			return QueryResult{}, err
		}
		s.queries.Add(uint64(len(keys)))
		if req.Aggregate {
			comb, err := CombineSnapshots(proto, syns...)
			if err != nil {
				return QueryResult{}, err
			}
			answers = append(answers, NewAggregateAnswer(metric, comb))
			continue
		}
		for i, key := range keys {
			answers = append(answers, NewAnswer(metric, key, syns[i]))
		}
	}
	return NewQueryResult(answers), nil
}

// QueryPoint answers a range merge-query for one series over the
// inclusive stream-time range [from, to] and returns the merged synopsis
// — the legacy point query, now a thin wrapper over Query. The result is
// private to the caller and reflects a consistent snapshot; querying a
// series the store has never seen returns an empty synopsis, not an error
// — absence of writes is a valid answer.
func (s *Store) QueryPoint(metric, key string, from, to int64) (Synopsis, error) {
	res, err := s.Query(PointRequest(metric, key, from, to))
	if err != nil {
		return nil, err
	}
	return res.Raw(), nil
}

// keyGather accumulates one key's bucket merge during a batched gather.
type keyGather struct {
	k      entryKey
	pos    int // index into the request's key slice
	result Synopsis
	sealed []Synopsis
}

// queryKeys range-merges the metric's buckets of every key over bucket
// range [fromB, toB] and returns one synopsis per key, in key order.
// Hot (splayed) keys take the point path's settle+gather; cold keys are
// grouped by home shard and gathered with one read-lock acquisition per
// shard, shards fanning out in parallel when more than one is involved.
// A valid tctx (a traced request) hangs one child span off it per shard
// gather and per hot-key gather; spans from parallel shard goroutines
// attach concurrently, which StartRemote permits.
func (s *Store) queryKeys(ctx context.Context, metric string, proto Prototype, keys []string, fromB, toB int64, tctx trace.Context) ([]Synopsis, error) {
	out := make([]Synopsis, len(keys))
	perShard := make(map[uint32][]*keyGather)
	for i, key := range keys {
		k := entryKey{metric: metric, key: key}
		if s.hotRouteFor(k) != nil {
			// The hot gather settles the key's pending batch and reads the
			// replica rings under the hot-key lock; it cannot batch with
			// cold shard gathers. Promotion racing this check is benign:
			// both paths serve the same history (see queryOne).
			if err := ctx.Err(); err != nil {
				return nil, queryCancelled(err)
			}
			hsp := s.traceGather(tctx, "store.hot_gather")
			hsp.SetAttrs(trace.Str("metric", metric), trace.Str("key", key))
			syn, err := s.queryOne(proto, k, fromB, toB, hsp)
			hsp.Finish()
			if err != nil {
				return nil, err
			}
			out[i] = syn
			continue
		}
		idx := s.shardIndex(k)
		perShard[idx] = append(perShard[idx], &keyGather{k: k, pos: i, result: proto()})
	}
	gatherShard := func(idx uint32, cells []*keyGather) error {
		// A cancelled request stops before paying for the shard lock;
		// one Err check per shard, never per key, keeps the hot single-
		// shard point path at a single branch.
		if err := ctx.Err(); err != nil {
			return queryCancelled(err)
		}
		sh := s.shards[idx]
		sp := s.traceGather(tctx, "store.gather")
		defer sp.Finish()
		var t0 time.Time
		if sp != nil {
			sp.SetAttrs(trace.Str("metric", metric),
				trace.Int("shard", int64(idx)), trace.Int("keys", int64(len(cells))))
			t0 = time.Now()
		}
		sh.mu.RLock()
		if sp != nil {
			sp.SetAttrs(trace.Int("lock_wait_ns", int64(time.Since(t0))))
		}
		for _, c := range cells {
			e, ok := sh.entries[c.k]
			if !ok {
				continue
			}
			for j := range e.slots {
				sl := &e.slots[j]
				if sl.idx < fromB || sl.idx > toB || sl.syn == nil {
					continue
				}
				if sl.sealed {
					c.sealed = append(c.sealed, sl.syn)
				} else if err := c.result.Merge(sl.syn); err != nil {
					sh.mu.RUnlock()
					return err
				}
			}
		}
		sh.mu.RUnlock()
		// Sealed synopses are immutable; merge them lock-free, in the same
		// slot order the point path uses, so answers match byte for byte.
		for _, c := range cells {
			for _, syn := range c.sealed {
				if err := c.result.Merge(syn); err != nil {
					return err
				}
			}
			out[c.pos] = c.result
		}
		return nil
	}
	switch len(perShard) {
	case 0:
	case 1:
		// The single-shard case (every point query lands here) runs inline:
		// no goroutine, no WaitGroup, nothing the old point path didn't pay.
		for idx, cells := range perShard {
			if err := gatherShard(idx, cells); err != nil {
				return nil, err
			}
		}
	default:
		var wg sync.WaitGroup
		errs := make([]error, 0, len(perShard))
		var errMu sync.Mutex
		for idx, cells := range perShard {
			wg.Add(1)
			go func(idx uint32, cells []*keyGather) {
				defer wg.Done()
				if err := gatherShard(idx, cells); err != nil {
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
				}
			}(idx, cells)
		}
		wg.Wait()
		if len(errs) > 0 {
			return nil, errs[0]
		}
	}
	return out, nil
}

// queryOne merges one series' buckets overlapping bucket range
// [fromB, toB] into a fresh synopsis. Sealed buckets merge outside the
// shard lock (they are immutable); still-open buckets merge under the
// read lock. For a splayed hot key the gather spans all replica shards
// under the hot-key read lock, so a concurrent demotion cannot
// double-count a bucket mid-drain. psp, when non-nil, is the traced
// request's hot-gather span; the settle of the key's pending
// write-combining batch records a child under it.
func (s *Store) queryOne(proto Prototype, k entryKey, fromB, toB int64, psp *trace.Span) (Synopsis, error) {
	result := proto()

	var sealed []Synopsis
	var err error
	gathered := false
	if r := s.hotRouteFor(k); r != nil {
		// Settle the key's pending write-combining batch first, so a
		// single-writer flow reads its own writes.
		if b := r.cur.Load(); b != nil && b.pos.Load() > 0 {
			ssp := psp.Child("store.hot_settle")
			s.sealAndFlush(r, b, true)
			ssp.Finish()
		}
	}
	if s.hotRouteFor(k) != nil {
		s.hotRW.RLock()
		if r := s.hotRouteFor(k); r != nil { // re-check: demotion may have won
			// A replica that hasn't absorbed a flush recently can retain
			// buckets an unsplayed ring would have expired; clamp the
			// range to the window anchored at the key's overall high
			// water so splaying never serves extra history.
			maxNewest := r.newest.Load()
			for _, idx := range r.shards {
				sh := s.shards[idx]
				sh.mu.RLock()
				if e, ok := sh.entries[k]; ok && e.newest > maxNewest {
					maxNewest = e.newest
				}
				sh.mu.RUnlock()
			}
			hotFromB := fromB
			if minB := maxNewest - int64(s.cfg.RingBuckets); hotFromB <= minB {
				hotFromB = minB + 1
			}
			for _, idx := range r.shards {
				if sealed, err = s.gather(s.shards[idx], k, hotFromB, toB, result, sealed, true); err != nil {
					s.hotRW.RUnlock()
					return nil, err
				}
			}
			gathered = true
		}
		s.hotRW.RUnlock()
	}
	if !gathered {
		if sealed, err = s.gather(s.shards[s.shardIndex(k)], k, fromB, toB, result, sealed, false); err != nil {
			return nil, err
		}
	}

	for _, syn := range sealed {
		if err := result.Merge(syn); err != nil {
			return nil, err
		}
	}
	return result, nil
}
