package subsequence

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// lisDP is the O(n^2) reference LIS (strictly increasing).
func lisDP(xs []uint64) int {
	if len(xs) == 0 {
		return 0
	}
	best := make([]int, len(xs))
	ans := 0
	for i := range xs {
		best[i] = 1
		for j := 0; j < i; j++ {
			if xs[j] < xs[i] && best[j]+1 > best[i] {
				best[i] = best[j] + 1
			}
		}
		if best[i] > ans {
			ans = best[i]
		}
	}
	return ans
}

func TestLISMatchesDP(t *testing.T) {
	rng := workload.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		xs := workload.Uniform(rng, 200, 100)
		l := NewLIS()
		for _, x := range xs {
			l.Update(x)
		}
		if want := lisDP(xs); l.Length() != want {
			t.Fatalf("trial %d: LIS %d != DP %d", trial, l.Length(), want)
		}
	}
}

func TestLISExtremes(t *testing.T) {
	l := NewLIS()
	for i := uint64(0); i < 1000; i++ {
		l.Update(i)
	}
	if l.Length() != 1000 {
		t.Fatalf("sorted LIS %d", l.Length())
	}
	d := NewLIS()
	for i := 1000; i > 0; i-- {
		d.Update(uint64(i))
	}
	if d.Length() != 1 {
		t.Fatalf("descending LIS %d", d.Length())
	}
	e := NewLIS()
	if e.Length() != 0 {
		t.Fatal("empty LIS nonzero")
	}
	// Strictness: equal elements do not extend.
	s := NewLIS()
	for i := 0; i < 10; i++ {
		s.Update(5)
	}
	if s.Length() != 1 {
		t.Fatalf("constant stream LIS %d", s.Length())
	}
}

func TestApproxLISBounds(t *testing.T) {
	if _, err := NewApproxLIS(1); err == nil {
		t.Fatal("m=1 accepted")
	}
	rng := workload.NewRNG(2)
	xs := workload.NearSorted(rng, 20000, 0.05)
	exact := NewLIS()
	approx, _ := NewApproxLIS(64)
	for _, x := range xs {
		exact.Update(x)
		approx.Update(x)
	}
	truth := float64(exact.Length())
	est := float64(approx.Estimate())
	if est < truth/4 || est > truth*4 {
		t.Fatalf("approx LIS %v far from exact %v", est, truth)
	}
	if approx.Bytes() >= exact.Bytes() {
		t.Fatalf("approx (%dB) not smaller than exact (%dB)", approx.Bytes(), exact.Bytes())
	}
}

func TestLCS(t *testing.T) {
	cases := []struct {
		a, b []uint64
		want int
	}{
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 3},
		{[]uint64{1, 2, 3}, []uint64{4, 5, 6}, 0},
		{[]uint64{1, 3, 5, 7}, []uint64{0, 3, 4, 7}, 2},
		{nil, []uint64{1}, 0},
		{[]uint64{2, 7, 1, 8, 2, 8}, []uint64{7, 1, 8}, 3},
	}
	for i, c := range cases {
		if got := LCS(c.a, c.b); got != c.want {
			t.Fatalf("case %d: LCS=%d want %d", i, got, c.want)
		}
	}
}

func TestLCSSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		ua := make([]uint64, len(a))
		ub := make([]uint64, len(b))
		for i, v := range a {
			ua[i] = uint64(v % 8)
		}
		for i, v := range b {
			ub[i] = uint64(v % 8)
		}
		return LCS(ua, ub) == LCS(ub, ua)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDTWIdentityAndShift(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	if d := DTWDistance(a, a, -1); d != 0 {
		t.Fatalf("self-distance %v", d)
	}
	// Time-warped copy (stretched) should be much closer under DTW than a
	// different shape.
	stretched := []float64{1, 1, 2, 2, 3, 3, 2, 2, 1, 1}
	other := []float64{5, -3, 8, 0, 7}
	if DTWDistance(a, stretched, -1) >= DTWDistance(a, other, -1) {
		t.Fatal("DTW failed to prefer warped copy")
	}
	if !math.IsInf(DTWDistance(nil, a, -1), 1) {
		t.Fatal("empty sequence distance not +inf")
	}
}

func TestDTWBandRestricts(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	unbounded := DTWDistance(a, b, -1)
	banded := DTWDistance(a, b, 1)
	if banded < unbounded {
		t.Fatalf("band lowered distance: %v < %v", banded, unbounded)
	}
}

func TestMatcherFindsPlantedPattern(t *testing.T) {
	// Plant a triangular pulse in noise at known positions.
	query := []float64{0, 2, 4, 6, 4, 2, 0}
	m, err := NewMatcher(query, 2.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(3)
	var matches []Match
	plant := map[int]bool{300: true, 700: true}
	pos := 0
	for i := 0; i < 1000; i++ {
		if plant[i] {
			for _, q := range query {
				if got := m.Update(q + rng.NormFloat64()*0.1); got != nil {
					matches = append(matches, *got)
				}
				pos++
			}
			continue
		}
		if got := m.Update(rng.NormFloat64() * 0.3); got != nil {
			matches = append(matches, *got)
		}
		pos++
	}
	if len(matches) < 2 {
		t.Fatalf("found %d matches, want >= 2", len(matches))
	}
	if len(matches) > 6 {
		t.Fatalf("too many spurious matches: %d", len(matches))
	}
}

func TestMatcherValidation(t *testing.T) {
	if _, err := NewMatcher(nil, 1, 0); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := NewMatcher([]float64{1}, 0, 0); err == nil {
		t.Fatal("threshold=0 accepted")
	}
}

func BenchmarkLISUpdate(b *testing.B) {
	l := NewLIS()
	for i := 0; i < b.N; i++ {
		l.Update(uint64(i*2654435761) % 100000)
	}
}

func BenchmarkDTW64x64(b *testing.B) {
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = float64(i % 7)
		y[i] = float64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DTWDistance(x, y, 8)
	}
}
