// Package subsequence implements the "Finding Subsequences" row of the
// tutorial's Table 1: longest increasing subsequence (exact patience
// sorting, plus the bounded-memory streaming approximation whose lower
// bounds the survey cites from Gál–Gopalan), longest common subsequence,
// and similarity search for a query pattern under a banded dynamic-time-
// warping distance (the Toyoda–Sakurai–Ishikawa citation), motivated by
// traffic analysis.
package subsequence

import (
	"math"
	"sort"

	"repro/internal/core"
)

// LIS maintains the length of the longest strictly increasing subsequence
// of the stream via patience sorting: tails[i] is the smallest possible
// tail of an increasing subsequence of length i+1. O(n log n) time,
// O(L) space where L is the LIS length — exact, and the baseline for the
// bounded-memory approximation below.
type LIS struct {
	tails []uint64
	n     uint64
}

// NewLIS returns an exact streaming LIS tracker.
func NewLIS() *LIS { return &LIS{} }

// Update observes the next value.
func (l *LIS) Update(v uint64) {
	l.n++
	idx := sort.Search(len(l.tails), func(i int) bool { return l.tails[i] >= v })
	if idx == len(l.tails) {
		l.tails = append(l.tails, v)
	} else {
		l.tails[idx] = v
	}
}

// Length returns the current LIS length.
func (l *LIS) Length() int { return len(l.tails) }

// Items returns the stream length.
func (l *LIS) Items() uint64 { return l.n }

// Bytes returns the tails footprint.
func (l *LIS) Bytes() int { return len(l.tails)*8 + 16 }

// ApproxLIS estimates the LIS length with at most m weighted tails: each
// retained tail carries the number of patience "piles" it stands for, and
// when the structure exceeds m, adjacent tails are pairwise merged (keeping
// the larger value, summing weights). New arrivals extend with weight-1
// tails, so the total weight tracks the true pile count at the coarsened
// resolution — the o(L)-space regime whose limits the survey cites from
// Gál–Gopalan.
type ApproxLIS struct {
	m     int
	tails []weightedTail
	n     uint64
}

type weightedTail struct {
	val uint64
	w   uint64
}

// NewApproxLIS returns a bounded-memory LIS estimator keeping at most m
// tails.
func NewApproxLIS(m int) (*ApproxLIS, error) {
	if m < 2 {
		return nil, core.Errf("ApproxLIS", "m", "%d must be >= 2", m)
	}
	return &ApproxLIS{m: m}, nil
}

// Update observes the next value.
func (a *ApproxLIS) Update(v uint64) {
	a.n++
	idx := sort.Search(len(a.tails), func(i int) bool { return a.tails[i].val >= v })
	if idx == len(a.tails) {
		a.tails = append(a.tails, weightedTail{val: v, w: 1})
	} else {
		a.tails[idx].val = v
	}
	if len(a.tails) > a.m {
		// Merge adjacent pairs: the pair's larger (second) value survives
		// and inherits the combined weight.
		kept := a.tails[:0]
		for i := 0; i+1 < len(a.tails); i += 2 {
			kept = append(kept, weightedTail{val: a.tails[i+1].val, w: a.tails[i].w + a.tails[i+1].w})
		}
		if len(a.tails)%2 == 1 {
			kept = append(kept, a.tails[len(a.tails)-1])
		}
		a.tails = kept
	}
}

// Estimate returns the estimated LIS length (total retained weight).
func (a *ApproxLIS) Estimate() uint64 {
	var total uint64
	for _, t := range a.tails {
		total += t.w
	}
	return total
}

// Bytes returns the tails footprint.
func (a *ApproxLIS) Bytes() int { return len(a.tails)*16 + 24 }

// LCS computes the longest common subsequence length of two sequences with
// the classic dynamic program in O(len(a)*len(b)) time and O(min) space —
// the offline baseline for the row's LCS problem.
func LCS(a, b []uint64) int {
	if len(b) > len(a) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DTWDistance computes dynamic-time-warping distance between two real
// sequences with a Sakoe–Chiba band of the given radius (radius < 0 means
// unconstrained). Used by Matcher for query-similar subsequence search.
func DTWDistance(a, b []float64, radius int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if radius >= 0 {
			lo = i - radius
			if lo < 1 {
				lo = 1
			}
			hi = i + radius
			if hi > m {
				hi = m
			}
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if best == inf {
				continue
			}
			cur[j] = d*d + best
		}
		prev, cur = cur, prev
	}
	if prev[m] == inf {
		return math.Inf(1)
	}
	return math.Sqrt(prev[m])
}

// Matcher finds stream subsequences similar to a fixed query pattern: it
// keeps a sliding buffer one query-length long and reports when the banded
// DTW distance to the query drops below the threshold — the streaming
// query-similar-subsequence problem of the Table 1 row.
type Matcher struct {
	query     []float64
	threshold float64
	radius    int
	buf       []float64
	n         uint64
	// cooldown suppresses overlapping re-reports of the same match.
	cooldown  int
	lastMatch int
}

// Match records a reported subsequence match.
type Match struct {
	End      uint64 // stream position of the last sample of the match
	Distance float64
}

// NewMatcher returns a matcher for the given query, DTW threshold and band
// radius.
func NewMatcher(query []float64, threshold float64, radius int) (*Matcher, error) {
	if len(query) == 0 {
		return nil, core.Errf("Matcher", "query", "must be non-empty")
	}
	if threshold <= 0 {
		return nil, core.Errf("Matcher", "threshold", "%v must be positive", threshold)
	}
	return &Matcher{
		query:     append([]float64(nil), query...),
		threshold: threshold,
		radius:    radius,
		cooldown:  len(query) / 2,
		lastMatch: -1 << 30,
	}, nil
}

// Update observes one sample and returns a non-nil Match when the current
// window matches the query.
func (m *Matcher) Update(v float64) *Match {
	m.n++
	m.buf = append(m.buf, v)
	if len(m.buf) > len(m.query) {
		m.buf = m.buf[1:]
	}
	if len(m.buf) < len(m.query) {
		return nil
	}
	if int(m.n)-m.lastMatch <= m.cooldown {
		return nil
	}
	if d := DTWDistance(m.buf, m.query, m.radius); d <= m.threshold {
		m.lastMatch = int(m.n)
		return &Match{End: m.n, Distance: d}
	}
	return nil
}
