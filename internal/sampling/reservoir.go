// Package sampling implements the stream-sampling algorithms of the
// tutorial's first Table 1 row: uniform reservoir sampling (Vitter's
// Algorithm R and the skip-ahead Algorithm L), weighted reservoir sampling
// (Efraimidis–Spirakis A-ES), Aggarwal's biased reservoir for evolving
// streams, Babcock–Datar–Motwani chain sampling over sliding windows, and
// plain Bernoulli sampling.
//
// The motivating application in the paper is A/B testing: a bounded,
// representative subsample of an unbounded event stream.
package sampling

import (
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// Reservoir maintains a uniform random sample of size k over a stream of
// unknown length (Vitter's Algorithm R): item n replaces a random slot with
// probability k/n. Every prefix of the stream is sampled uniformly.
type Reservoir[T any] struct {
	k     int
	items []T
	seen  uint64
	rng   *workload.RNG
}

// NewReservoir returns a uniform reservoir sampler of size k.
func NewReservoir[T any](k int, seed uint64) (*Reservoir[T], error) {
	if k <= 0 {
		return nil, core.Errf("Reservoir", "k", "%d must be positive", k)
	}
	return &Reservoir[T]{k: k, items: make([]T, 0, k), rng: workload.NewRNG(seed)}, nil
}

// Update offers one item to the sampler.
func (r *Reservoir[T]) Update(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	j := r.rng.Uint64() % r.seen
	if j < uint64(r.k) {
		r.items[j] = item
	}
}

// Sample returns the current sample. The returned slice aliases internal
// state; callers that keep it across updates must copy.
func (r *Reservoir[T]) Sample() []T { return r.items }

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() uint64 { return r.seen }

// ReservoirL is Vitter-style reservoir sampling with geometric skips
// (Algorithm L, Li 1994): instead of drawing a random number per item it
// computes how many items to skip before the next replacement, reducing RNG
// work from O(n) to O(k log(n/k)) — the variant that matters at the
// firehose rates the tutorial targets.
type ReservoirL[T any] struct {
	k     int
	items []T
	seen  uint64
	skip  uint64 // items to skip before the next replacement
	w     float64
	rng   *workload.RNG
}

// NewReservoirL returns a skip-ahead uniform reservoir sampler of size k.
func NewReservoirL[T any](k int, seed uint64) (*ReservoirL[T], error) {
	if k <= 0 {
		return nil, core.Errf("ReservoirL", "k", "%d must be positive", k)
	}
	r := &ReservoirL[T]{k: k, items: make([]T, 0, k), rng: workload.NewRNG(seed), w: 1}
	return r, nil
}

func (r *ReservoirL[T]) drawSkip() {
	// w *= U^(1/k); skip ~ floor(log(U)/log(1-w))
	r.w *= math.Exp(math.Log(r.rng.Float64()+1e-300) / float64(r.k))
	r.skip = uint64(math.Floor(math.Log(r.rng.Float64()+1e-300)/math.Log(1-r.w))) + 1
}

// Update offers one item to the sampler.
func (r *ReservoirL[T]) Update(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		if len(r.items) == r.k {
			r.drawSkip()
		}
		return
	}
	if r.skip > 1 {
		r.skip--
		return
	}
	r.items[r.rng.Intn(r.k)] = item
	r.drawSkip()
}

// Sample returns the current sample (aliases internal state).
func (r *ReservoirL[T]) Sample() []T { return r.items }

// Seen returns the number of items offered so far.
func (r *ReservoirL[T]) Seen() uint64 { return r.seen }

// Bernoulli samples each item independently with probability p. The sample
// size is unbounded (binomial in the stream length); it is the baseline the
// reservoir variants are compared against.
type Bernoulli[T any] struct {
	p     float64
	items []T
	seen  uint64
	rng   *workload.RNG
}

// NewBernoulli returns a Bernoulli sampler with inclusion probability p.
func NewBernoulli[T any](p float64, seed uint64) (*Bernoulli[T], error) {
	if p <= 0 || p > 1 {
		return nil, core.Errf("Bernoulli", "p", "%v not in (0,1]", p)
	}
	return &Bernoulli[T]{p: p, rng: workload.NewRNG(seed)}, nil
}

// Update offers one item to the sampler.
func (b *Bernoulli[T]) Update(item T) {
	b.seen++
	if b.rng.Float64() < b.p {
		b.items = append(b.items, item)
	}
}

// Sample returns the accumulated sample (aliases internal state).
func (b *Bernoulli[T]) Sample() []T { return b.items }

// Seen returns the number of items offered so far.
func (b *Bernoulli[T]) Seen() uint64 { return b.seen }
