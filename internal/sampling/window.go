package sampling

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// ChainSample maintains a uniform random sample of size k over the last n
// items of the stream (sequence-based sliding window), using the chain
// sampling technique of Babcock, Datar and Motwani cited by the survey.
//
// Each of the k chains independently samples one window element: when the
// chain's current element is chosen, a replacement index in that element's
// successor window is pre-drawn, and a "chain" of successors is stored so
// expiry never leaves the chain empty. Expected chain length is O(1), so
// total space is O(k) in expectation.
type ChainSample[T any] struct {
	k      int
	window uint64
	seen   uint64
	chains []chain[T]
	rng    *workload.RNG
}

type chainLink[T any] struct {
	index uint64 // stream position of this element
	item  T
}

type chain[T any] struct {
	links []chainLink[T] // links[0] is the current sample element
	next  uint64         // pre-drawn index whose arrival extends the chain
}

// NewChainSample returns a sliding-window sampler keeping k samples over
// the last window items.
func NewChainSample[T any](k int, window uint64, seed uint64) (*ChainSample[T], error) {
	if k <= 0 {
		return nil, core.Errf("ChainSample", "k", "%d must be positive", k)
	}
	if window == 0 {
		return nil, core.Errf("ChainSample", "window", "must be positive")
	}
	return &ChainSample[T]{
		k:      k,
		window: window,
		chains: make([]chain[T], k),
		rng:    workload.NewRNG(seed),
	}, nil
}

// Update offers one item (stream positions are assigned internally).
func (c *ChainSample[T]) Update(item T) {
	i := c.seen // position of this item
	c.seen++
	for ci := range c.chains {
		ch := &c.chains[ci]
		// Expire links that fell out of the window.
		for len(ch.links) > 0 && ch.links[0].index+c.window <= i {
			ch.links = ch.links[1:]
		}
		switch {
		case len(ch.links) == 0:
			// Empty chain (cold start or full expiry): sample this item
			// with probability 1/min(i+1, window) per standard reservoir
			// logic restricted to the window.
			m := i + 1
			if m > c.window {
				m = c.window
			}
			if c.rng.Uint64()%m == 0 {
				ch.links = []chainLink[T]{{index: i, item: item}}
				ch.next = i + 1 + c.rng.Uint64()%c.window
			}
		case i == ch.next:
			// The pre-drawn successor arrived: append it to the chain.
			ch.links = append(ch.links, chainLink[T]{index: i, item: item})
			ch.next = i + 1 + c.rng.Uint64()%c.window
		default:
			// With probability 1/min(i+1, window), replace the chain head
			// with this item (keeps uniformity as the window slides).
			m := i + 1
			if m > c.window {
				m = c.window
			}
			if c.rng.Uint64()%m == 0 {
				ch.links = []chainLink[T]{{index: i, item: item}}
				ch.next = i + 1 + c.rng.Uint64()%c.window
			}
		}
	}
}

// Sample returns the current window sample; fewer than k items may be
// returned while chains are cold.
func (c *ChainSample[T]) Sample() []T {
	out := make([]T, 0, c.k)
	for _, ch := range c.chains {
		if len(ch.links) > 0 {
			out = append(out, ch.links[0].item)
		}
	}
	return out
}

// SampleIndexes returns the stream positions of the current samples,
// used by tests to verify every sample lies inside the window.
func (c *ChainSample[T]) SampleIndexes() []uint64 {
	out := make([]uint64, 0, c.k)
	for _, ch := range c.chains {
		if len(ch.links) > 0 {
			out = append(out, ch.links[0].index)
		}
	}
	return out
}

// Seen returns the number of items offered so far.
func (c *ChainSample[T]) Seen() uint64 { return c.seen }

// ChainBytes reports the total number of stored links, a proxy for the
// O(k) expected space bound.
func (c *ChainSample[T]) ChainBytes() int {
	total := 0
	for _, ch := range c.chains {
		total += len(ch.links)
	}
	return total
}
