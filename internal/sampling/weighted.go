package sampling

import (
	"container/heap"
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// WeightedReservoir implements Efraimidis–Spirakis A-ES weighted sampling
// without replacement: each item gets key u^(1/w) for u ~ U(0,1) and the k
// largest keys are kept. The inclusion probability of an item is
// proportional to its weight, which is what the survey's weighted-sampling
// citation ("on random sampling over joins") needs for join-size-aware
// samples.
type WeightedReservoir[T any] struct {
	k    int
	h    keyHeap[T]
	seen uint64
	rng  *workload.RNG
}

type keyed[T any] struct {
	key  float64
	item T
}

type keyHeap[T any] []keyed[T]

func (h keyHeap[T]) Len() int           { return len(h) }
func (h keyHeap[T]) Less(i, j int) bool { return h[i].key < h[j].key }
func (h keyHeap[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *keyHeap[T]) Push(x any)        { *h = append(*h, x.(keyed[T])) }
func (h *keyHeap[T]) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// NewWeightedReservoir returns a weighted sampler of size k.
func NewWeightedReservoir[T any](k int, seed uint64) (*WeightedReservoir[T], error) {
	if k <= 0 {
		return nil, core.Errf("WeightedReservoir", "k", "%d must be positive", k)
	}
	return &WeightedReservoir[T]{k: k, rng: workload.NewRNG(seed)}, nil
}

// Update offers one item with the given positive weight; zero or negative
// weights are ignored (the item can never be sampled).
func (w *WeightedReservoir[T]) Update(item T, weight float64) {
	w.seen++
	if weight <= 0 {
		return
	}
	key := math.Pow(w.rng.Float64(), 1/weight)
	if w.h.Len() < w.k {
		heap.Push(&w.h, keyed[T]{key: key, item: item})
		return
	}
	if key > w.h[0].key {
		w.h[0] = keyed[T]{key: key, item: item}
		heap.Fix(&w.h, 0)
	}
}

// Sample returns the current sample.
func (w *WeightedReservoir[T]) Sample() []T {
	out := make([]T, 0, w.h.Len())
	for _, e := range w.h {
		out = append(out, e.item)
	}
	return out
}

// Seen returns the number of items offered so far.
func (w *WeightedReservoir[T]) Seen() uint64 { return w.seen }

// BiasedReservoir implements Aggarwal's biased reservoir sampling for
// evolving streams: each arrival evicts a random resident with probability
// fill-fraction, so the sample's temporal bias follows a memory-less decay
// and recent items dominate — addressing the survey's point that stale data
// should not influence analysis on drifting streams.
type BiasedReservoir[T any] struct {
	k     int
	items []T
	seen  uint64
	rng   *workload.RNG
}

// NewBiasedReservoir returns a biased reservoir sampler of capacity k.
func NewBiasedReservoir[T any](k int, seed uint64) (*BiasedReservoir[T], error) {
	if k <= 0 {
		return nil, core.Errf("BiasedReservoir", "k", "%d must be positive", k)
	}
	return &BiasedReservoir[T]{k: k, rng: workload.NewRNG(seed)}, nil
}

// Update offers one item.
func (b *BiasedReservoir[T]) Update(item T) {
	b.seen++
	fill := float64(len(b.items)) / float64(b.k)
	if b.rng.Float64() < fill {
		// Replace a random resident: exponential bias toward recency.
		b.items[b.rng.Intn(len(b.items))] = item
		return
	}
	b.items = append(b.items, item)
}

// Sample returns the current sample (aliases internal state).
func (b *BiasedReservoir[T]) Sample() []T { return b.items }

// Seen returns the number of items offered so far.
func (b *BiasedReservoir[T]) Seen() uint64 { return b.seen }
