package sampling

import (
	"math"
	"testing"
)

func TestReservoirParamValidation(t *testing.T) {
	if _, err := NewReservoir[int](0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewReservoirL[int](-1, 1); err == nil {
		t.Fatal("k=-1 accepted")
	}
	if _, err := NewBernoulli[int](0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewBernoulli[int](1.5, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
	if _, err := NewWeightedReservoir[int](0, 1); err == nil {
		t.Fatal("weighted k=0 accepted")
	}
	if _, err := NewBiasedReservoir[int](0, 1); err == nil {
		t.Fatal("biased k=0 accepted")
	}
	if _, err := NewChainSample[int](0, 10, 1); err == nil {
		t.Fatal("chain k=0 accepted")
	}
	if _, err := NewChainSample[int](5, 0, 1); err == nil {
		t.Fatal("chain window=0 accepted")
	}
}

func TestReservoirSizeBounded(t *testing.T) {
	r, _ := NewReservoir[int](100, 1)
	for i := 0; i < 10000; i++ {
		r.Update(i)
	}
	if len(r.Sample()) != 100 {
		t.Fatalf("sample size %d, want 100", len(r.Sample()))
	}
	if r.Seen() != 10000 {
		t.Fatalf("seen %d, want 10000", r.Seen())
	}
}

func TestReservoirShortStream(t *testing.T) {
	r, _ := NewReservoir[int](100, 1)
	for i := 0; i < 10; i++ {
		r.Update(i)
	}
	if len(r.Sample()) != 10 {
		t.Fatalf("short stream sample size %d, want 10", len(r.Sample()))
	}
}

// uniformityChi2 runs many independent samplings of {0..n-1} and chi-square
// tests the per-item inclusion counts against uniform.
func uniformityChi2(t *testing.T, sample func(seed uint64) []int, n, k, trials int) {
	t.Helper()
	counts := make([]float64, n)
	for s := 0; s < trials; s++ {
		for _, v := range sample(uint64(s + 1)) {
			counts[v]++
		}
	}
	expected := float64(trials*k) / float64(n)
	chi2 := 0.0
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	// df = n-1; allow 6 sigma: mean df, sd sqrt(2 df).
	df := float64(n - 1)
	if chi2 > df+6*math.Sqrt(2*df) {
		t.Fatalf("chi2 %.1f exceeds uniform bound (df %.0f)", chi2, df)
	}
}

func TestReservoirUniform(t *testing.T) {
	const n, k, trials = 50, 10, 4000
	uniformityChi2(t, func(seed uint64) []int {
		r, _ := NewReservoir[int](k, seed)
		for i := 0; i < n; i++ {
			r.Update(i)
		}
		return r.Sample()
	}, n, k, trials)
}

func TestReservoirLUniform(t *testing.T) {
	const n, k, trials = 50, 10, 4000
	uniformityChi2(t, func(seed uint64) []int {
		r, _ := NewReservoirL[int](k, seed)
		for i := 0; i < n; i++ {
			r.Update(i)
		}
		return r.Sample()
	}, n, k, trials)
}

func TestReservoirLMatchesRSize(t *testing.T) {
	r, _ := NewReservoirL[int](64, 3)
	for i := 0; i < 100000; i++ {
		r.Update(i)
	}
	if len(r.Sample()) != 64 {
		t.Fatalf("sample size %d", len(r.Sample()))
	}
	if r.Seen() != 100000 {
		t.Fatalf("seen %d", r.Seen())
	}
}

func TestBernoulliRate(t *testing.T) {
	b, _ := NewBernoulli[int](0.1, 5)
	const n = 100000
	for i := 0; i < n; i++ {
		b.Update(i)
	}
	got := float64(len(b.Sample()))
	// Binomial(1e5, 0.1): mean 1e4, sd ~95. Allow 6 sigma.
	if math.Abs(got-n*0.1) > 600 {
		t.Fatalf("bernoulli kept %v of %d at p=0.1", got, n)
	}
}

func TestWeightedReservoirFavorsHeavy(t *testing.T) {
	// Item 0 has weight 50; items 1..999 weight 1. Over many trials item 0
	// must appear far more often than any individual light item.
	const trials = 2000
	heavyHits := 0
	lightHits := 0
	for s := 0; s < trials; s++ {
		w, _ := NewWeightedReservoir[int](10, uint64(s+1))
		for i := 0; i < 1000; i++ {
			weight := 1.0
			if i == 0 {
				weight = 50
			}
			w.Update(i, weight)
		}
		for _, v := range w.Sample() {
			if v == 0 {
				heavyHits++
			}
			if v == 500 {
				lightHits++
			}
		}
	}
	if heavyHits < 10*lightHits {
		t.Fatalf("weighting ineffective: heavy=%d light=%d", heavyHits, lightHits)
	}
}

func TestWeightedReservoirIgnoresNonPositive(t *testing.T) {
	w, _ := NewWeightedReservoir[int](5, 1)
	w.Update(1, 0)
	w.Update(2, -3)
	if len(w.Sample()) != 0 {
		t.Fatal("non-positive weights sampled")
	}
	w.Update(3, 1)
	if len(w.Sample()) != 1 {
		t.Fatal("positive weight not sampled")
	}
}

func TestBiasedReservoirRecency(t *testing.T) {
	b, _ := NewBiasedReservoir[int](100, 7)
	const n = 100000
	for i := 0; i < n; i++ {
		b.Update(i)
	}
	// With k=100 the decay constant is ~1/k; nearly all samples should be
	// from the last ~10k items, none from the first half.
	young := 0
	for _, v := range b.Sample() {
		if v >= n/2 {
			young++
		}
	}
	if young < 95 {
		t.Fatalf("biased reservoir kept too many old items: young=%d/100", young)
	}
}

func TestBiasedReservoirCapacity(t *testing.T) {
	b, _ := NewBiasedReservoir[int](50, 7)
	for i := 0; i < 10000; i++ {
		b.Update(i)
	}
	if len(b.Sample()) > 50 {
		t.Fatalf("capacity exceeded: %d", len(b.Sample()))
	}
}

func TestChainSampleWithinWindow(t *testing.T) {
	const window = 500
	c, _ := NewChainSample[int](20, window, 9)
	const n = 20000
	for i := 0; i < n; i++ {
		c.Update(i)
		if i%1000 == 999 {
			for _, idx := range c.SampleIndexes() {
				if idx+window <= uint64(i) {
					t.Fatalf("sample index %d expired at time %d", idx, i)
				}
			}
		}
	}
	if len(c.Sample()) == 0 {
		t.Fatal("no samples produced")
	}
}

func TestChainSampleUniformOverWindow(t *testing.T) {
	// After a long run, sampled positions should be uniform over the last
	// window; test by bucketing positions into window quarters.
	const window = 400
	const trials = 1500
	quarters := [4]int{}
	for s := 0; s < trials; s++ {
		c, _ := NewChainSample[int](4, window, uint64(s+1))
		const n = 2000
		for i := 0; i < n; i++ {
			c.Update(i)
		}
		for _, idx := range c.SampleIndexes() {
			age := (2000 - 1) - int(idx) // 0..window-1
			quarters[age/(window/4)]++
		}
	}
	total := 0
	for _, q := range quarters {
		total += q
	}
	for qi, q := range quarters {
		frac := float64(q) / float64(total)
		if math.Abs(frac-0.25) > 0.05 {
			t.Fatalf("quarter %d fraction %.3f, want ~0.25 (%v)", qi, frac, quarters)
		}
	}
}

func TestChainSampleSpaceBounded(t *testing.T) {
	c, _ := NewChainSample[int](50, 1000, 11)
	for i := 0; i < 100000; i++ {
		c.Update(i)
	}
	// Expected O(k); generous constant.
	if b := c.ChainBytes(); b > 50*20 {
		t.Fatalf("chains grew too long: %d links", b)
	}
}

func BenchmarkReservoirR(b *testing.B) {
	r, _ := NewReservoir[int](1024, 1)
	for i := 0; i < b.N; i++ {
		r.Update(i)
	}
}

func BenchmarkReservoirL(b *testing.B) {
	r, _ := NewReservoirL[int](1024, 1)
	for i := 0; i < b.N; i++ {
		r.Update(i)
	}
}

func BenchmarkChainSample(b *testing.B) {
	c, _ := NewChainSample[int](64, 10000, 1)
	for i := 0; i < b.N; i++ {
		c.Update(i)
	}
}
