// router.go is the cluster's client surface: it partitions Observe
// traffic by key onto the ingest topic (batched appends, one partition
// lock acquisition per batch) and answers queries by routing to the
// owning node or scatter-gathering across nodes and combining the
// partial synopses.
package dstore

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mqlog"
	"repro/internal/store"
)

func errNodeStopped(name string) error {
	return fmt.Errorf("dstore: node %s stopped", name)
}

// routerPart is one partition's producer-side buffer. The lock is held
// across the batched append so batches reach the log in buffer order and
// per-key ordering survives concurrent producers on the same partition.
type routerPart struct {
	mu  sync.Mutex
	buf []mqlog.Record
}

// Router is the cluster's ingest and query front end. One Router is safe
// for concurrent use; Observe buffers per partition and appends in
// batches, so call Flush when a producer finishes (Drain does).
type Router struct {
	c     *Cluster
	parts []routerPart
}

func newRouter(c *Cluster) *Router {
	return &Router{c: c, parts: make([]routerPart, c.cfg.Partitions)}
}

// Observe encodes the observation onto the ingest topic, partitioned by
// key — the same hash Produce uses, so a series always lands in one
// partition and replays in order. Unknown metrics, empty keys and
// negative times fail here, producer-side, rather than poisoning the
// consumers (an empty key would round-robin by value hash in the log,
// scattering one series across partitions that different nodes own).
func (r *Router) Observe(obs store.Observation) error {
	if obs.Time < 0 {
		return core.Errf("Router", "Time", "%d must be >= 0", obs.Time)
	}
	if obs.Key == "" {
		return core.Errf("Router", "Key", "must be non-empty (keys are the unit of partition ownership)")
	}
	if _, err := r.c.proto(obs.Metric); err != nil {
		return err
	}
	rec := mqlog.Record{Key: obs.Key, Value: store.EncodeObservation(obs)}
	pid := r.c.topic.PartitionFor(obs.Key)
	p := &r.parts[pid]
	p.mu.Lock()
	p.buf = append(p.buf, rec)
	if len(p.buf) >= r.c.cfg.BatchSize {
		r.c.topic.ProduceBatchTo(pid, p.buf)
		p.buf = p.buf[:0]
	}
	p.mu.Unlock()
	return nil
}

// Flush appends every buffered observation to the log.
func (r *Router) Flush() {
	for pid := range r.parts {
		p := &r.parts[pid]
		p.mu.Lock()
		if len(p.buf) > 0 {
			r.c.topic.ProduceBatchTo(pid, p.buf)
			p.buf = p.buf[:0]
		}
		p.mu.Unlock()
	}
}

// owner resolves a key to the node currently serving its partition, plus
// the group generation the assignment was read at (the fence value for
// generation-checked queries — Owner returns both atomically).
func (r *Router) owner(key string) (*Node, int, error) {
	pid := r.c.topic.PartitionFor(key)
	member, gen, ok := r.c.group.Owner(pid)
	if !ok {
		return nil, gen, fmt.Errorf("dstore: partition %d unowned (no live nodes)", pid)
	}
	n := r.c.node(member)
	if n == nil {
		// The member left between the Owner read and the node lookup; the
		// group has rebalanced (or will momentarily). Retrying resolves
		// against the new assignment.
		return nil, gen, fmt.Errorf("dstore: partition %d owner %s is gone (rebalance in flight)", pid, member)
	}
	return n, gen, nil
}

// Query answers a range merge-query for one series by routing to the
// node that owns the key's partition. The answer is generation-fenced:
// the group generation is snapshotted, the owner must serve a store
// recovered for at least that generation (waiting out an in-flight
// recovery), and if a rebalance moved the generation meanwhile the
// routing is redone — so the answer never comes from a store whose
// assignment predates the ownership lookup (which could silently miss
// the key's partition). Sustained membership churn surfaces as the
// unowned/gone errors below, never as a wrong answer.
func (r *Router) Query(metric, key string, from, to int64) (store.Synopsis, error) {
	for {
		n, gen, err := r.owner(key)
		if err != nil {
			return nil, err
		}
		st, ok := n.waitServingAt(gen)
		if !ok {
			// The node stopped while we waited; re-resolve ownership.
			continue
		}
		if r.c.group.Generation() == gen {
			// The group did not rebalance across the lookup+wait, so the
			// store we hold was recovered for exactly the assignment the
			// routing decision used. It stays valid even if a rebalance
			// lands during the merge below: a recovered store is never
			// mutated into a different assignment, only replaced.
			return st.Query(metric, key, from, to)
		}
	}
}

// QueryMerged answers for the union of the given keys — e.g. site-wide
// uniques over a set of pages — by scatter-gather: keys group by owning
// node, each node combines its keys locally into one partial, and the
// partials merge through store.CombineSnapshots in deterministic node
// order. Duplicate keys are deduplicated first (a union contains each
// series once; merging a key twice would double additive counts). The
// merge is exact for merge-invariant synopses (HLL, Count-Min) and
// within the usual sketch guarantees for the rest, which is the
// tutorial's "algorithms should scale out" property end to end. Like
// Query, the fan-out is generation-fenced and redone if a rebalance
// races it.
func (r *Router) QueryMerged(metric string, keys []string, from, to int64) (store.Synopsis, error) {
	proto, err := r.c.proto(metric)
	if err != nil {
		return nil, err
	}
	if from > to {
		return nil, core.Errf("Router", "range", "from %d > to %d", from, to)
	}
	dedup := append([]string(nil), keys...)
	slices.Sort(dedup)
	dedup = slices.Compact(dedup)

	for {
		// One assignment snapshot resolves every key: per-key Owner calls
		// would rescan the member list under the group lock once per key.
		owners, gen := r.c.group.Owners()
		byNode := make(map[*Node][]string)
		var order []*Node
		for _, key := range dedup {
			pid := r.c.topic.PartitionFor(key)
			member := owners[pid]
			if member == "" {
				return nil, fmt.Errorf("dstore: partition %d unowned (no live nodes)", pid)
			}
			n := r.c.node(member)
			if n == nil {
				return nil, fmt.Errorf("dstore: partition %d owner %s is gone (rebalance in flight)", pid, member)
			}
			if _, seen := byNode[n]; !seen {
				order = append(order, n)
			}
			byNode[n] = append(byNode[n], key)
		}
		sort.Slice(order, func(i, j int) bool { return order[i].name < order[j].name })

		partials := make([]store.Synopsis, len(order))
		errs := make([]error, len(order))
		var wg sync.WaitGroup
		for i, n := range order {
			wg.Add(1)
			go func(i int, n *Node) {
				defer wg.Done()
				partials[i], errs[i] = n.queryMerged(gen, metric, byNode[n], from, to)
			}(i, n)
		}
		wg.Wait()
		if r.c.group.Generation() != gen {
			// A rebalance raced the fan-out; the grouping (and possibly
			// some partials) reflect a stale assignment. Redo the routing.
			continue
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return store.CombineSnapshots(proto, partials...)
	}
}

// Keys returns every key of the metric resident in the cluster: the
// union of the live nodes' key sets, sorted and deduplicated (a key can
// transiently appear on two nodes around a rebalance).
func (r *Router) Keys(metric string) []string {
	var out []string
	for _, n := range r.c.liveNodes() {
		out = append(out, n.keys(metric)...)
	}
	slices.Sort(out)
	return slices.Compact(out)
}
