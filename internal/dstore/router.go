// router.go is the cluster's client surface: it partitions Observe
// traffic by key onto the ingest topic (batched appends, one partition
// lock acquisition per batch) and answers queries by routing to the
// owning node or scatter-gathering across nodes and combining the
// partial synopses.
package dstore

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/trace"
)

func errNodeStopped(name string) error {
	return fmt.Errorf("dstore: node %s stopped", name)
}

// queryCancelled wraps a context error so errors.Is still sees
// context.Canceled / context.DeadlineExceeded through the wrap.
func queryCancelled(err error) error {
	return fmt.Errorf("dstore: query cancelled: %w", err)
}

// routerPart is one partition's producer-side buffer. The lock is held
// across the batched append so batches reach the log in buffer order and
// per-key ordering survives concurrent producers on the same partition.
type routerPart struct {
	mu  sync.Mutex
	buf []mqlog.Record
}

// Router is the cluster's ingest and query front end. One Router is safe
// for concurrent use; Observe buffers per partition and appends in
// batches, so call Flush when a producer finishes (Drain does).
type Router struct {
	c     *Cluster
	parts []routerPart
}

func newRouter(c *Cluster) *Router {
	return &Router{c: c, parts: make([]routerPart, c.cfg.Partitions)}
}

// Observe encodes the observation onto the ingest topic, partitioned by
// key — the same hash Produce uses, so a series always lands in one
// partition and replays in order. Unknown metrics, empty keys and
// negative times fail here, producer-side, rather than poisoning the
// consumers (an empty key would round-robin by value hash in the log,
// scattering one series across partitions that different nodes own).
func (r *Router) Observe(obs store.Observation) error {
	if obs.Time < 0 {
		return core.Errf("Router", "Time", "%d must be >= 0", obs.Time)
	}
	if obs.Key == "" {
		return core.Errf("Router", "Key", "must be non-empty (keys are the unit of partition ownership)")
	}
	if _, err := r.c.proto(obs.Metric); err != nil {
		return err
	}
	rec := mqlog.Record{Key: obs.Key, Value: store.EncodeObservation(obs)}
	if obs.Trace.Valid() && r.c.tracer() != nil {
		// The wire codec doesn't carry trace context; a sampled
		// observation crosses the log as a record header instead, where
		// the owning node's event loop stitches it back (trace_wire.go).
		rec.Headers = []mqlog.Header{{Key: trace.HeaderKey, Value: trace.EncodeContext(obs.Trace)}}
	}
	pid := r.c.topic.PartitionFor(obs.Key)
	p := &r.parts[pid]
	p.mu.Lock()
	p.buf = append(p.buf, rec)
	if len(p.buf) >= r.c.cfg.BatchSize {
		r.appendBatch(pid, p.buf)
		p.buf = p.buf[:0]
	}
	p.mu.Unlock()
	return nil
}

// ObserveBatch encodes a whole slice of observations onto the ingest
// topic with one partition-buffer acquisition per partition group
// instead of one per observation. The entire batch is validated first
// (producer-side, like Observe) and a validation failure buffers
// NOTHING; an accepted batch reaches the log in input order per
// partition — a key's records all land in one partition group, so
// per-series replay order matches a loop of Observe exactly. Buffers
// still flush at BatchSize; call Flush (or Drain) when the producer
// finishes.
func (r *Router) ObserveBatch(obs []store.Observation) error {
	if len(obs) == 0 {
		return nil
	}
	for i := range obs {
		o := &obs[i]
		if o.Time < 0 {
			return core.Errf("Router", "Time", "%d must be >= 0", o.Time)
		}
		if o.Key == "" {
			return core.Errf("Router", "Key", "must be non-empty (keys are the unit of partition ownership)")
		}
		if _, err := r.c.proto(o.Metric); err != nil {
			return err
		}
	}
	tracer := r.c.tracer()
	groups := make([][]int, len(r.parts))
	for i := range obs {
		pid := r.c.topic.PartitionFor(obs[i].Key)
		groups[pid] = append(groups[pid], i)
	}
	for pid, group := range groups {
		if len(group) == 0 {
			continue
		}
		p := &r.parts[pid]
		p.mu.Lock()
		for _, i := range group {
			o := obs[i]
			rec := mqlog.Record{Key: o.Key, Value: store.EncodeObservation(o)}
			if o.Trace.Valid() && tracer != nil {
				rec.Headers = []mqlog.Header{{Key: trace.HeaderKey, Value: trace.EncodeContext(o.Trace)}}
			}
			p.buf = append(p.buf, rec)
			if len(p.buf) >= r.c.cfg.BatchSize {
				r.appendBatch(pid, p.buf)
				p.buf = p.buf[:0]
			}
		}
		p.mu.Unlock()
	}
	return nil
}

// appendBatch lands one partition buffer on the log. When the batch
// carries sampled records, the first one's trace gets an append-side
// span — one per flush, not per record, matching the batch being the
// unit of producer work. Callers hold the partition buffer lock.
func (r *Router) appendBatch(pid int, buf []mqlog.Record) {
	var sp *trace.Span
	if tr := r.c.tracer(); tr != nil {
		if ctx := firstTracedContext(buf); ctx.Valid() {
			sp = tr.StartRemote(ctx, "mqlog.append")
		}
	}
	first, err := r.c.topic.ProduceBatchTo(pid, buf)
	if sp != nil {
		sp.SetAttrs(trace.Int("partition", int64(pid)), trace.Int("records", int64(len(buf))))
		if err == nil {
			sp.SetAttrs(trace.Int("first_offset", int64(first)))
		}
		sp.Finish()
	}
}

// Flush appends every buffered observation to the log.
func (r *Router) Flush() {
	for pid := range r.parts {
		p := &r.parts[pid]
		p.mu.Lock()
		if len(p.buf) > 0 {
			r.appendBatch(pid, p.buf)
			p.buf = p.buf[:0]
		}
		p.mu.Unlock()
	}
}

// RegisterMetric binds a metric on the cluster (see
// Cluster.RegisterMetric) — the router is the cluster's analytics.Backend
// face, so registration is reachable through it too.
func (r *Router) RegisterMetric(name string, proto store.Prototype) error {
	return r.c.RegisterMetric(name, proto)
}

// Stats snapshots the cluster's aggregated store counters — the
// analytics.Backend form of Cluster.Stats (which additionally reports
// node/recovery/lag counters).
func (r *Router) Stats() store.Stats {
	return r.c.Stats().Store
}

// unreachableError names exactly which partitions and members a fan-out
// could not resolve — the difference between "the cluster is down" and
// "node-3 is mid-rebalance" when a multi-key query fails.
func unreachableError(op string, unowned []int, gone []string) error {
	switch {
	case len(unowned) > 0 && len(gone) > 0:
		return fmt.Errorf("dstore: %s: partitions %v unowned and owners %v gone (rebalance in flight)", op, unowned, gone)
	case len(unowned) > 0:
		return fmt.Errorf("dstore: %s: partitions %v unowned (no live nodes)", op, unowned)
	default:
		return fmt.Errorf("dstore: %s: owners %v gone (rebalance in flight)", op, gone)
	}
}

// nodeErrors composes the per-node failures of a scatter-gather into one
// error naming every unreachable node, instead of surfacing whichever
// partial failed first.
func nodeErrors(op string, names []string, errs []error) error {
	var parts []string
	for i, err := range errs {
		if err != nil {
			parts = append(parts, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	if len(parts) == 0 {
		return nil
	}
	return fmt.Errorf("dstore: %s: %d of %d nodes failed: %s", op, len(parts), len(names), strings.Join(parts, "; "))
}

// Query answers one serving-API request by scatter-gather: every
// requested (metric, key) cell is grouped by owning node under ONE
// assignment snapshot, the owning nodes are fanned out in parallel —
// each node range-merges its keys per metric in batched store queries —
// and the per-key partials come back in sorted key order, metric by
// metric. The whole round is generation-fenced once: if a rebalance
// moves the group generation across the gather, the routing is redone
// against the new assignment, so an answer never comes from a store
// whose assignment predates the ownership lookup, and a multi-metric
// answer never mixes assignments across metrics. Sustained membership
// churn surfaces as errors naming the unreachable partitions and nodes,
// never as a wrong answer. Aggregate answers merge the per-key partials
// in sorted key order through store.CombineSnapshots, byte-identical to
// issuing per-key queries and combining them caller-side.
func (r *Router) Query(req store.QueryRequest) (store.QueryResult, error) {
	return r.QueryContext(context.Background(), req)
}

// QueryContext is Query honoring a deadline: ctx threads through the
// scatter-gather into every owning node's store gather (and the wait
// for a node still mid-recovery), so a cancelled or expired context
// aborts the round with an error wrapping ctx.Err() instead of fanning
// out work nobody is waiting for. Cancellation never poisons node
// state — the query path is read-only and each node's event loop is
// untouched — and a cancelled round is never retried, even when a
// rebalance raced it. context.Background() recovers plain Query.
func (r *Router) QueryContext(ctx context.Context, req store.QueryRequest) (store.QueryResult, error) {
	req, err := req.Normalize()
	if err != nil {
		return store.QueryResult{}, err
	}
	protos := make([]store.Prototype, len(req.Metrics))
	for i, metric := range req.Metrics {
		if protos[i], err = r.c.proto(metric); err != nil {
			return store.QueryResult{}, err
		}
	}
	// nodeReq is one node's slice of the fan-out: for each metric index,
	// the node's keys (ascending request positions — grouping preserves
	// the sorted key order) and where their answers scatter back to.
	type nodeReq struct {
		n    *Node
		keys [][]string
		pos  [][]int
	}
	for {
		// A fenced retry re-enters here; a cancelled request stops instead
		// of re-routing against the new assignment.
		if err := ctx.Err(); err != nil {
			return store.QueryResult{}, queryCancelled(err)
		}
		// One assignment snapshot resolves every cell of every metric:
		// per-key Owner calls would rescan the member list under the group
		// lock once per key, and per-metric snapshots could fence different
		// metrics against different assignments.
		owners, gen := r.c.group.Owners()
		keysPer := make([][]string, len(req.Metrics))
		for i, metric := range req.Metrics {
			if req.AllKeys {
				keysPer[i] = r.Keys(metric) // sorted and deduplicated
			} else {
				keysPer[i] = req.Keys
			}
		}
		byName := make(map[string]*nodeReq)
		var order []*nodeReq
		var unowned []int
		var gone []string
		for mi := range req.Metrics {
			for ki, key := range keysPer[mi] {
				pid := r.c.topic.PartitionFor(key)
				member := owners[pid]
				if member == "" {
					if !slices.Contains(unowned, pid) {
						unowned = append(unowned, pid)
					}
					continue
				}
				nq, seen := byName[member]
				if !seen {
					n := r.c.node(member)
					if n == nil {
						if !slices.Contains(gone, member) {
							gone = append(gone, member)
						}
						continue
					}
					nq = &nodeReq{n: n, keys: make([][]string, len(req.Metrics)), pos: make([][]int, len(req.Metrics))}
					byName[member] = nq
					order = append(order, nq)
				}
				nq.keys[mi] = append(nq.keys[mi], key)
				nq.pos[mi] = append(nq.pos[mi], ki)
			}
		}
		if len(unowned) > 0 || len(gone) > 0 {
			sort.Ints(unowned)
			sort.Strings(gone)
			r.c.unreachable.Add(1)
			return store.QueryResult{}, unreachableError("query", unowned, gone)
		}
		sort.Slice(order, func(i, j int) bool { return order[i].n.name < order[j].n.name })

		// One parallel round: each owning node answers all of its metrics'
		// key slices (one batched store query per metric) in one goroutine.
		names := make([]string, len(order))
		partials := make([][][]store.Synopsis, len(order)) // [node][metric][key]
		errs := make([]error, len(order))
		var fanStart time.Time
		tel := r.c.tel.Load()
		if tel != nil {
			fanStart = time.Now()
		}
		// A traced request records one span per fan-out round (a fenced
		// retry records another) with one child per node; the node hangs
		// its store's per-shard gather spans off its child via the
		// sub-request's Trace context.
		var ssp *trace.Span
		if tr := r.c.tracer(); tr != nil && req.Trace.Valid() {
			ssp = tr.StartRemote(req.Trace, "dstore.scatter")
			ssp.SetAttrs(trace.Int("nodes", int64(len(order))), trace.Int("generation", int64(gen)))
		}
		var wg sync.WaitGroup
		for i, nq := range order {
			names[i] = nq.n.name
			partials[i] = make([][]store.Synopsis, len(req.Metrics))
			wg.Add(1)
			go func(i int, nq *nodeReq) {
				defer wg.Done()
				nsp := ssp.Child("dstore.node")
				nsp.SetAttrs(trace.Str("node", nq.n.name))
				defer nsp.Finish()
				for mi, keys := range nq.keys {
					if len(keys) == 0 {
						continue
					}
					syns, err := nq.n.queryKeys(ctx, gen, req.Metrics[mi], keys, req.From, req.To, nsp.Context())
					if err != nil {
						errs[i] = err
						return
					}
					partials[i][mi] = syns
				}
			}(i, nq)
		}
		wg.Wait()
		if tel != nil {
			tel.scatter.ObserveSince(fanStart)
		}
		if err := ctx.Err(); err != nil {
			// The context died mid-round; the partials are incomplete and
			// the per-node errors would just echo the cancellation.
			ssp.SetAttrs(trace.Bool("cancelled", true))
			ssp.Finish()
			return store.QueryResult{}, queryCancelled(err)
		}
		if r.c.group.Generation() != gen {
			// A rebalance raced the fan-out; the grouping (and possibly
			// some partials) reflect a stale assignment. Redo the routing.
			ssp.SetAttrs(trace.Bool("refenced", true))
			ssp.Finish()
			continue
		}
		ssp.Finish()
		if err := nodeErrors("query", names, errs); err != nil {
			r.c.unreachable.Add(1)
			return store.QueryResult{}, err
		}

		// Scatter the partials back into per-metric, key-ordered slices and
		// build the answer cells.
		var answers []store.Answer
		for mi, metric := range req.Metrics {
			syns := make([]store.Synopsis, len(keysPer[mi]))
			for i, nq := range order {
				for j, pos := range nq.pos[mi] {
					syns[pos] = partials[i][mi][j]
				}
			}
			if req.Aggregate {
				comb, err := store.CombineSnapshots(protos[mi], syns...)
				if err != nil {
					return store.QueryResult{}, err
				}
				answers = append(answers, store.NewAggregateAnswer(metric, comb))
				continue
			}
			for j, key := range keysPer[mi] {
				answers = append(answers, store.NewAnswer(metric, key, syns[j]))
			}
		}
		return store.NewQueryResult(answers), nil
	}
}

// QueryPoint answers a legacy point query (inclusive [from, to]) for one
// series by routing to the node that owns the key's partition — a thin
// wrapper over Query; see its fencing contract.
func (r *Router) QueryPoint(metric, key string, from, to int64) (store.Synopsis, error) {
	res, err := r.Query(store.PointRequest(metric, key, from, to))
	if err != nil {
		return nil, err
	}
	return res.Raw(), nil
}

// QueryMerged answers for the union of the given keys over the inclusive
// range [from, to] — e.g. site-wide uniques over a set of pages — as an
// aggregate Query: keys deduplicate and sort, owning nodes range-merge
// their keys locally, and the per-key partials combine in sorted key
// order through store.CombineSnapshots. The merge is exact for
// merge-invariant synopses (HLL, Count-Min) and within the usual sketch
// guarantees for the rest, which is the tutorial's "algorithms should
// scale out" property end to end. A failed fan-out reports which
// partitions were unowned or which nodes were unreachable by name.
func (r *Router) QueryMerged(metric string, keys []string, from, to int64) (store.Synopsis, error) {
	if len(keys) == 0 {
		// The union over no series is the empty synopsis; skip the fan-out
		// (and its validation of an arbitrary placeholder key).
		proto, err := r.c.proto(metric)
		if err != nil {
			return nil, err
		}
		if from > to {
			return nil, core.Errf("Router", "range", "from %d > to %d", from, to)
		}
		return proto(), nil
	}
	req := store.PointRequest(metric, "", from, to)
	req.Keys = keys
	req.Aggregate = true
	res, err := r.Query(req)
	if err != nil {
		return nil, err
	}
	return res.Raw(), nil
}

// Keys returns every key of the metric resident in the cluster: the
// union of the live nodes' key sets, sorted and deduplicated (a key can
// transiently appear on two nodes around a rebalance).
func (r *Router) Keys(metric string) []string {
	var out []string
	for _, n := range r.c.liveNodes() {
		out = append(out, n.keys(metric)...)
	}
	slices.Sort(out)
	return slices.Compact(out)
}
