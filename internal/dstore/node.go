// node.go is the cluster's scale-out unit: a single-threaded event loop
// (the Samza container model) owning one local store and the partitions
// the consumer group assigns it, with log-based recovery on every
// ownership change. See the package comment for the recovery state
// machine and the invariant it maintains.
package dstore

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/trace"
)

// idleBackoff is how long a node sleeps after an empty poll. It bounds
// the busy-poll cost of caught-up nodes without adding meaningful
// end-to-end latency (a batch is never more than one backoff away).
const idleBackoff = 50 * time.Microsecond

// Node is one cluster member: an event-loop goroutine, its local store,
// and its recovery state.
type Node struct {
	c    *Cluster
	name string

	mu      sync.RWMutex
	st      *store.Store  // serving store; nil while recovering
	gen     int           // group generation st was recovered for
	serveCh chan struct{} // closed when st is non-nil

	stopCh chan struct{}
	done   chan struct{}

	// ckptReq hands snapshot requests to the event loop: the loop is the
	// store's only writer, so a checkpoint taken there captures exactly
	// the state the committed offsets describe.
	ckptReq chan chan error

	recoveries   atomic.Uint64
	applied      atomic.Uint64
	replayed     atomic.Uint64
	rejected     atomic.Uint64
	ckptRestores atomic.Uint64
}

func newNode(c *Cluster, name string) *Node {
	return &Node{
		c:       c,
		name:    name,
		gen:     -1, // force recovery before first serve
		serveCh: make(chan struct{}),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
		ckptReq: make(chan chan error),
	}
}

// Name returns the node's consumer-group member name.
func (n *Node) Name() string { return n.name }

func (n *Node) stop() {
	close(n.stopCh)
	<-n.done
}

func (n *Node) stopped() bool {
	select {
	case <-n.stopCh:
		return true
	default:
		return false
	}
}

// serving reports whether the node has a recovered store and for which
// group generation.
func (n *Node) serving() (gen int, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.gen, n.st != nil
}

// currentStore returns the serving store, or nil while recovering.
func (n *Node) currentStore() *store.Store {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st
}

// StoreStats returns the serving store's counters; ok is false while the
// node is recovering.
func (n *Node) StoreStats() (st store.Stats, ok bool) {
	s := n.currentStore()
	if s == nil {
		return store.Stats{}, false
	}
	return s.Stats(), true
}

// run is the event loop: recover on generation change, otherwise poll the
// assigned partitions, apply, and commit with generation fencing.
func (n *Node) run() {
	defer close(n.done)
	for !n.stopped() {
		gen := n.c.group.Generation()
		n.mu.RLock()
		current := n.gen
		recovered := n.st != nil
		n.mu.RUnlock()
		if !recovered || current != gen {
			n.recover(gen)
			continue
		}

		// Service a checkpoint request only here — serving, at the current
		// generation, with every applied batch committed (a fence rejection
		// implies a generation change, which the check above routes to
		// recovery first). The snapshot therefore equals the committed
		// offsets exactly.
		select {
		case reply := <-n.ckptReq:
			reply <- n.writeCheckpoint(gen)
			continue
		default:
		}

		batches := n.c.group.Poll(n.name, n.c.cfg.PollBatch)
		if len(batches) == 0 {
			// Caught up (or unassigned): yield rather than spin on the
			// broker locks. A plain Sleep (not time.After in a select)
			// keeps the idle loop allocation-free; the loop condition
			// re-checks stopCh, bounding stop latency to one backoff.
			time.Sleep(idleBackoff)
			continue
		}
		st := n.currentStore()
		trc := n.c.tracer()
		for _, b := range batches {
			for _, m := range b.Messages {
				// A record carrying a trace header is a sampled ingest:
				// stitch its consume (fetch) and apply onto the trace the
				// router started on the far side of the log. Untraced
				// records (the common case) pay a nil check and an empty
				// header scan.
				var fsp *trace.Span
				if trc != nil {
					if ctx := headerContext(m.Headers); ctx.Valid() {
						fsp = trc.StartRemote(ctx, "mqlog.fetch")
						fsp.SetAttrs(trace.Str("node", n.name),
							trace.Int("partition", int64(b.Partition)),
							trace.Int("offset", int64(m.Offset)))
					}
				}
				obs, ok := store.WireDecoder(m)
				if !ok {
					n.rejected.Add(1)
					fsp.Finish()
					continue
				}
				asp := fsp.Child("dstore.apply")
				if asp != nil {
					obs.Trace = asp.Context()
				}
				err := st.Observe(obs)
				asp.Finish()
				fsp.Finish()
				if err != nil {
					// A poison message (unregistered metric, negative
					// time) must not wedge the partition: count and move
					// on, the log-consumer convention.
					n.rejected.Add(1)
					continue
				}
				n.applied.Add(1)
			}
			if !n.c.group.CommitFenced(n.name, gen, b.Partition, b.Next) {
				// A rebalance won mid-batch. The batch already landed in
				// our store, which may now hold rows for partitions we no
				// longer own — the next loop iteration rebuilds it from
				// the log, which also re-reads the uncommitted batch, so
				// nothing is double-counted or lost.
				n.c.fenceRejected.Add(1)
				break
			}
		}
	}
}

// recover rebuilds the node's store for the given generation: a fresh
// store, the full retained prefix of every now-owned partition replayed
// up to an end-offset snapshot, the replay ends committed (fenced), and
// only then the store swapped in for serving. If the generation moves
// again mid-recovery the attempt is abandoned; the event loop retries
// against the new assignment.
func (n *Node) recover(gen int) {
	start := time.Now()
	// Leave serving mode: queries block on serveCh until the swap.
	n.mu.Lock()
	if n.st != nil {
		n.st = nil
		n.serveCh = make(chan struct{})
	}
	n.mu.Unlock()

	freshStore := func() (*store.Store, bool) {
		st, err := n.c.newNodeStore()
		if err != nil {
			// Config errors are permanent; park until stopped rather than
			// hot-loop (New validated the same store config up front, so
			// this is effectively unreachable).
			n.rejected.Add(1)
			select {
			case <-n.stopCh:
			case <-time.After(time.Millisecond):
			}
			return nil, false
		}
		if t := n.c.tel.Load(); t != nil {
			// Wire the fresh store before it serves: re-registration
			// re-binds the node's metric series to the rebuilt store's
			// counters.
			st.SetTelemetry(t.reg, "layer", "dstore", "node", n.name)
		}
		if tr := n.c.tracer(); tr != nil {
			st.SetTracer(tr)
		}
		return st, true
	}
	st, ok := freshStore()
	if !ok {
		return
	}
	// Replay through a filtering decoder: a poison message (undecodable,
	// unregistered metric, negative time) is counted and skipped, exactly
	// as the live loop treats it — an Observe error inside ReplayPartition
	// would otherwise wedge recovery in a retry loop.
	metrics := n.c.metricTable()
	decode := func(m mqlog.Message) (store.Observation, bool) {
		obs, ok := store.WireDecoder(m)
		if !ok || obs.Time < 0 || metrics[obs.Metric] == nil {
			n.rejected.Add(1)
			return store.Observation{}, false
		}
		return obs, true
	}
	// Each partition replays from its offset floor (0 when no
	// TruncateBelow has fenced the cluster): fetch resumes at the oldest
	// retained message above it, so this is "replay the whole retained,
	// owned prefix" regardless of where retention has truncated — the
	// history below the horizon is unrecoverable by construction, and the
	// history below the floor belongs to the batch layer. A still-valid
	// checkpoint raises the start to its recorded offset: the snapshot
	// already holds [floor, offset), so only the suffix replays.
	assignment := n.c.group.Assignment(n.name)
	starts := make([]uint64, len(assignment))
	for i, pid := range assignment {
		starts[i] = n.c.floor(pid)
	}
	if n.c.cfg.CheckpointDir != "" {
		offs, restored, dirty := n.tryRestore(st, assignment)
		switch {
		case restored:
			n.ckptRestores.Add(1)
			for i, pid := range assignment {
				if offs[pid] > starts[i] {
					starts[i] = offs[pid]
				}
			}
		case dirty:
			// The restore failed mid-flight and left partial state: fall
			// back to a full replay into a rebuilt store.
			if st, ok = freshStore(); !ok {
				return
			}
		}
	}
	for i, pid := range assignment {
		next := starts[i]
		for {
			if n.stopped() || n.c.group.Generation() != gen {
				return
			}
			end, applied, _, err := store.ReplayPartition(st, n.c.topic, pid, next, decode)
			n.replayed.Add(applied)
			if err == nil {
				next = end
				break
			}
			// A store error the decode filter did not anticipate (e.g. a
			// misbehaving custom Prototype): treat the failing offset as
			// poison like the live loop would — count it, step past it,
			// resume — rather than rebuilding and rehitting it forever.
			n.rejected.Add(1)
			next = end + 1
		}
		if !n.c.group.CommitFenced(n.name, gen, pid, next) {
			n.c.fenceRejected.Add(1)
			return
		}
	}
	st.FlushHot()
	if n.c.group.Generation() != gen {
		return
	}
	n.mu.Lock()
	n.st = st
	n.gen = gen
	close(n.serveCh)
	n.mu.Unlock()
	n.recoveries.Add(1)
	n.c.observeRecovery(start)
}

// waitServing blocks until the node has a recovered store (or was
// stopped) and returns it.
func (n *Node) waitServing() (*store.Store, bool) {
	return n.waitServingAt(context.Background(), -1)
}

// waitServingAt blocks until the node serves at group generation >= gen
// (or was stopped) and returns the serving store. A node serving an
// older generation simply hasn't noticed the rebalance yet — there is no
// recovery channel to wait on in that state, so the wait yields on the
// idle backoff until the event loop catches up. A node's generation
// never exceeds the group's, so callers that snapshot the group
// generation, wait here, and see the group unchanged afterwards have a
// store built for exactly that assignment. A cancelled ctx abandons the
// wait (false) without touching node state — the event loop and any
// in-flight recovery continue unaffected, so an impatient caller cannot
// poison the node for the next one.
func (n *Node) waitServingAt(ctx context.Context, gen int) (*store.Store, bool) {
	for {
		n.mu.RLock()
		st, g, ch := n.st, n.gen, n.serveCh
		n.mu.RUnlock()
		if st != nil && g >= gen {
			return st, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
		if st != nil {
			if n.stopped() {
				return nil, false
			}
			time.Sleep(idleBackoff)
			continue
		}
		select {
		case <-ch:
		case <-n.stopCh:
			return nil, false
		case <-ctx.Done():
			return nil, false
		}
	}
}

// Query answers a legacy point query (inclusive [from, to]) from the
// node's local store, waiting out an in-flight recovery first (callers
// route here because the node owns the key's partition; an answer from a
// half-recovered store would undercount). Router queries additionally
// fence the answer against the group generation; direct callers get the
// node's current serving store.
func (n *Node) Query(metric, key string, from, to int64) (store.Synopsis, error) {
	st, ok := n.waitServing()
	if !ok {
		return nil, errNodeStopped(n.name)
	}
	return st.QueryPoint(metric, key, from, to)
}

// queryKeys answers for a set of keys (sorted, deduplicated by the
// router) out of the store recovered for generation >= gen: one batched
// store query per node — the store groups the keys by shard and gathers
// each shard under a single lock acquisition — returning one synopsis per
// key, in key order. tctx, when valid, is the router's per-node scatter
// span; the store hangs its per-shard gather spans off it. ctx bounds
// both the wait for a recovered store and the store gather itself; a
// cancelled sub-query surfaces the context error, which the router
// reports without retrying.
func (n *Node) queryKeys(ctx context.Context, gen int, metric string, keys []string, from, to int64, tctx trace.Context) ([]store.Synopsis, error) {
	st, ok := n.waitServingAt(ctx, gen)
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, errNodeStopped(n.name)
	}
	res, err := st.QueryContext(ctx, store.QueryRequest{Metric: metric, Keys: keys, From: from, To: to, Trace: tctx})
	if err != nil {
		return nil, err
	}
	return res.RawSynopses(), nil
}

// checkpointDir is the node's private snapshot directory.
func (n *Node) checkpointDir() string {
	return filepath.Join(n.c.cfg.CheckpointDir, n.name)
}

// requestCheckpoint hands a snapshot request to the event loop and waits
// for the result. The request is serviced only between fully committed
// batches (see run), so the snapshot never captures applied-but-
// uncommitted state.
func (n *Node) requestCheckpoint() error {
	reply := make(chan error, 1)
	select {
	case n.ckptReq <- reply:
	case <-n.stopCh:
		return errNodeStopped(n.name)
	}
	select {
	case err := <-reply:
		return err
	case <-n.stopCh:
		return errNodeStopped(n.name)
	}
}

// writeCheckpoint snapshots the serving store, stamped with the committed
// offsets of the owned partitions, the assignment itself, and the floors
// in force — everything a later recovery needs to decide whether the
// snapshot still matches its world. Runs on the event loop; gen is the
// generation the loop is serving at, and a rebalance racing the write
// invalidates it (the manifest would describe an assignment the data does
// not match), so the pair is removed and the call fails.
func (n *Node) writeCheckpoint(gen int) error {
	st := n.currentStore()
	if st == nil {
		return fmt.Errorf("dstore: node %s has no serving store", n.name)
	}
	parts := n.c.group.Assignment(n.name)
	offsets := make([]uint64, n.c.topic.Partitions())
	for _, pid := range parts {
		offsets[pid] = n.c.broker.Committed(n.c.cfg.Group, n.c.cfg.Topic, pid)
	}
	dir := n.checkpointDir()
	if _, err := store.WriteCheckpoint(st, dir, store.CheckpointMeta{
		Offsets:    offsets,
		Partitions: parts,
		Floors:     n.c.Floors(),
	}); err != nil {
		return err
	}
	if n.c.group.Generation() != gen {
		store.RemoveCheckpoint(dir)
		return fmt.Errorf("dstore: node %s rebalanced during checkpoint", n.name)
	}
	return nil
}

// tryRestore seeds st from the node's checkpoint when the snapshot still
// matches this recovery's world: the same owned-partition set, the same
// offset floors as when it was written (a moved floor bakes in history
// the batch layer now owns, which no replay can subtract), and geometry
// the restore itself verifies. On success it returns the full
// per-partition offset array replay resumes from. A restore that fails
// mid-flight leaves partial state in st; dirty tells the caller to
// rebuild the store before falling back to the full replay.
func (n *Node) tryRestore(st *store.Store, assignment []int) (offsets []uint64, ok, dirty bool) {
	dir := n.checkpointDir()
	man, err := store.ReadCheckpointManifest(dir)
	if err != nil {
		return nil, false, false
	}
	if len(man.Offsets) != n.c.topic.Partitions() || !sameIntSet(man.Partitions, assignment) {
		return nil, false, false
	}
	for _, pid := range assignment {
		if floorAt(man.Floors, pid) != n.c.floor(pid) {
			return nil, false, false
		}
	}
	if _, err := store.RestoreCheckpoint(st, dir); err != nil {
		return nil, false, true
	}
	return man.Offsets, true, false
}

// sameIntSet reports whether a and b hold the same partition ids,
// ignoring order.
func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// floorAt reads a manifest floor array (nil or short = no fence).
func floorAt(floors []uint64, pid int) uint64 {
	if pid < len(floors) {
		return floors[pid]
	}
	return 0
}

// keys returns the metric's keys resident on this node.
func (n *Node) keys(metric string) []string {
	st, ok := n.waitServing()
	if !ok {
		return nil
	}
	return st.Keys(metric)
}
