// Package dstore is the partitioned store cluster: multi-node serving
// over the mqlog partitioned log, with scatter-gather queries and
// log-based recovery. It is the step the tutorial's Section 3 platforms
// all take to scale the speed layer past one process — Storm/Heron
// partition bolt state across workers, Samza pins a local store to each
// Kafka partition, MillWheel hangs per-key state off a sharded log — and
// the step ROADMAP's "Distribution" item names: partition internal/store
// across nodes using mqlog as the transport, with the store's replay
// machinery as the recovery story.
//
// Shape. One Cluster owns an ingest Topic (N partitions), a ConsumerGroup
// over it, and a set of Nodes. Each Node is a deliberately single-threaded
// event loop — Samza's container model, the scale-out unit is the node,
// not a thread pool — that polls the partitions the group assigns it,
// decodes observations with the store wire codec, and applies them to its
// own store.Store. Producers never talk to nodes: the Router partitions
// Observe traffic by key onto the topic (batched appends via
// Topic.ProduceBatch), so the log decouples producers from consumers
// exactly as in Figure 1's Lambda input dispatch.
//
// Ownership and recovery. Keys hash to partitions (Topic.PartitionFor)
// and partitions to nodes (the consumer group's range assignment), so
// every series has exactly one serving node between rebalances. Any
// membership change bumps the group generation; each node notices and
// runs the recovery state machine:
//
//	serving ──(generation changed)──► recovering: build a fresh store,
//	   ▲                              replay every now-owned partition's
//	   │                              retained prefix up to an end-offset
//	   │                              snapshot (store.ReplayPartition),
//	   │                              commit the replay ends (fenced)
//	   └──────(replay complete)────── and swap the store in.
//
// Rebuilding from scratch — rather than patching the previous store —
// keeps one invariant that makes scatter-gather trivially correct: a
// serving node's store contains exactly the observations of its currently
// owned partitions, nothing else. A node that lost partitions holds no
// stale copy of them (no double counting when fanning out), and a node
// that gained partitions has their full retained history (no gaps).
// Commits use generation fencing (ConsumerGroup.CommitFenced), so a
// preempted former owner can never clobber the new owner's position.
//
// Queries. Router.Query routes to the key's owner; Router.QueryMerged
// fans a key set out to the owning nodes, each node combines its keys
// locally, and the partials merge through store.CombineSnapshots — the
// mergeable-synopsis property is what makes the cluster answer equal a
// single store fed the same log (experiment T3.1 checks this equality
// through a kill-and-rejoin cycle).
package dstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config tunes a Cluster.
type Config struct {
	// Partitions is the ingest topic's partition count (default 8). It
	// bounds the useful node count: partitions are the unit of ownership.
	Partitions int
	// Retention is the per-partition retention limit in messages
	// (0 = unlimited). Recovery replays the retained prefix, so retention
	// bounds how much history a rejoining node can restore — the same
	// tradeoff Kafka-backed state stores make.
	Retention int
	// Topic and Group name the ingest topic and consumer group
	// (defaults "dstore-ingest", "dstore").
	Topic string
	Group string
	// Store configures each node's local store. Per-node budgets
	// (MaxShardBytes) model per-node memory: adding nodes multiplies the
	// cluster's aggregate synopsis budget, which is the scaling story
	// T3.1 measures.
	Store store.Config
	// PollBatch is the max messages a node takes per poll (default 512).
	PollBatch int
	// BatchSize is how many observations the Router buffers per partition
	// before one batched append (default 64; 1 = unbatched).
	BatchSize int
	// Durable, when non-nil, backs the ingest topic with segmented on-disk
	// persistence (see mqlog.DurableConfig): the log survives a process
	// restart, and a cluster rebuilt over the same directory recovers its
	// nodes from the persisted prefix. Nil keeps the in-memory topic.
	Durable *mqlog.DurableConfig
	// CheckpointDir, when non-empty, enables store snapshots: Checkpoint
	// writes each serving node's store into CheckpointDir/<node name>, and
	// node recovery seeds its rebuilt store from a still-valid snapshot,
	// replaying only the log suffix past it instead of the full retained
	// prefix.
	CheckpointDir string
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Topic == "" {
		c.Topic = "dstore-ingest"
	}
	if c.Group == "" {
		c.Group = "dstore"
	}
	if c.PollBatch <= 0 {
		c.PollBatch = 512
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	return c
}

// Stats aggregates the cluster's counters.
type Stats struct {
	Nodes              int    // live nodes
	Recoveries         uint64 // completed node recoveries (includes first starts)
	Applied            uint64 // observations applied by live node event loops
	Replayed           uint64 // observations applied by recovery replays
	Rejected           uint64 // messages dropped by decode or store errors
	Lag                uint64 // unconsumed messages across the group
	CheckpointRestores uint64 // recoveries seeded from a checkpoint (suffix replay)
	Store              store.Stats
}

// Cluster is a set of store nodes behind one partitioned ingest log.
type Cluster struct {
	cfg    Config
	broker *mqlog.Broker
	topic  *mqlog.Topic
	group  *mqlog.ConsumerGroup
	router *Router

	// protos is the registered metric table, swapped copy-on-write under
	// mu and read lock-free: Router.Observe validates every observation
	// against it, and a mutex there would serialize all producers.
	protos atomic.Pointer[map[string]store.Prototype]

	// floors is the per-partition offset fence TruncateBelow installs
	// (nil = serve the whole retained prefix): node recovery replays each
	// owned partition from max(floor, earliest), so offsets below the
	// floor are excluded from every store rebuilt after the fence moved.
	floors atomic.Pointer[[]uint64]

	// tel is the cluster's telemetry wiring (telemetry.go), swapped
	// atomically because SetTelemetry may race already-running node
	// event loops. fenceRejected and unreachable are always-on atomics:
	// generation-fence commit rejections and failed query fan-outs.
	tel           atomic.Pointer[clusterTel]
	fenceRejected atomic.Uint64
	unreachable   atomic.Uint64

	// trc is the cluster's tracer (trace_wire.go), atomic for the same
	// reason tel is: SetTracer may race running node event loops.
	trc atomic.Pointer[trace.Tracer]

	mu     sync.Mutex
	nodes  map[string]*Node
	nextID int
	closed bool
}

// New returns a cluster with no nodes. Register metrics, then StartNode.
func New(cfg Config) (*Cluster, error) {
	if cfg.Retention < 0 {
		return nil, core.Errf("Cluster", "Retention", "%d must be >= 0", cfg.Retention)
	}
	// Validate the per-node store config now: node recovery builds stores
	// from it forever after, and a config that cannot construct would
	// otherwise leave every node retrying recovery and Drain hanging.
	if _, err := store.New(cfg.Store); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	broker := mqlog.NewBroker()
	// CreateTopicDurable with a nil DurableConfig is exactly CreateTopic,
	// so the in-memory path is untouched; with one, the ingest log is
	// recovered from disk before the first node starts.
	topic, err := broker.CreateTopicDurable(cfg.Topic, cfg.Partitions, cfg.Retention, cfg.Durable)
	if err != nil {
		return nil, err
	}
	group, err := mqlog.NewConsumerGroup(broker, topic, cfg.Group)
	if err != nil {
		topic.Close()
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		broker: broker,
		topic:  topic,
		group:  group,
		nodes:  make(map[string]*Node),
	}
	empty := make(map[string]store.Prototype)
	c.protos.Store(&empty)
	c.router = newRouter(c)
	return c, nil
}

// RegisterMetric binds a metric name to the prototype every node's store
// will build buckets with. Metrics must be registered before the first
// node starts: node stores are rebuilt from the registered set on every
// recovery, and a metric appearing mid-flight would leave already-serving
// nodes unable to absorb its observations.
func (c *Cluster) RegisterMetric(name string, proto store.Prototype) error {
	if name == "" {
		return core.Errf("Cluster", "metric", "name must be non-empty")
	}
	if proto == nil {
		return core.Errf("Cluster", "proto", "prototype for %q is nil", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.nodes) > 0 {
		return fmt.Errorf("dstore: register metric %q before starting nodes", name)
	}
	cur := *c.protos.Load()
	if _, exists := cur[name]; exists {
		return fmt.Errorf("dstore: metric %q already registered", name)
	}
	next := make(map[string]store.Prototype, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = proto
	c.protos.Store(&next)
	return nil
}

// metricTable returns the registered metric table (read-only; swapped
// copy-on-write by RegisterMetric).
func (c *Cluster) metricTable() map[string]store.Prototype { return *c.protos.Load() }

// Metrics returns the registered metric names, sorted.
func (c *Cluster) Metrics() []string {
	table := c.metricTable()
	out := make([]string, 0, len(table))
	for name := range table {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (c *Cluster) proto(metric string) (store.Prototype, error) {
	p, ok := c.metricTable()[metric]
	if !ok {
		return nil, fmt.Errorf("dstore: %w %q", store.ErrUnknownMetric, metric)
	}
	return p, nil
}

// newNodeStore builds one node's empty local store with every registered
// metric bound.
func (c *Cluster) newNodeStore() (*store.Store, error) {
	st, err := store.New(c.cfg.Store)
	if err != nil {
		return nil, err
	}
	for name, proto := range c.metricTable() {
		if err := st.RegisterMetric(name, proto); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// StartNode adds a node to the cluster and returns its name. The join
// rebalances the consumer group; the new node (and every node whose
// assignment changed) recovers its partitions from the log before
// serving.
func (c *Cluster) StartNode() (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", fmt.Errorf("dstore: cluster closed")
	}
	name := fmt.Sprintf("node-%d", c.nextID)
	c.nextID++
	n := newNode(c, name)
	c.nodes[name] = n
	// Join under the cluster lock: registering the node first lets a
	// router fanning out by ownership always resolve the member, and
	// joining before the lock drops means a concurrent Close cannot slip
	// between them and leave a ghost member the group owns partitions
	// for but no goroutine serves.
	c.group.Join(name)
	c.mu.Unlock()
	go n.run()
	return name, nil
}

// StopNode kills a node: it leaves the group (survivors rebalance and
// recover its partitions from the log) and its local store is discarded —
// the crash model, not a graceful handoff, because log-based recovery
// must not depend on the dead node's state.
func (c *Cluster) StopNode(name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if ok {
		delete(c.nodes, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("dstore: unknown node %q", name)
	}
	c.group.Leave(name)
	n.stop()
	return nil
}

// node resolves a member name to its live node.
func (c *Cluster) node(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// Node returns the live node with the given name, or nil.
func (c *Cluster) Node(name string) *Node { return c.node(name) }

// Assignment returns the partitions currently owned by the named node.
func (c *Cluster) Assignment(name string) []int { return c.group.Assignment(name) }

// liveNodes returns the live nodes in deterministic (name) order — the
// fan-out order scatter-gather combines partials in.
func (c *Cluster) liveNodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Node, len(names))
	for i, name := range names {
		out[i] = c.nodes[name]
	}
	return out
}

// NodeNames returns the live node names, sorted.
func (c *Cluster) NodeNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Router returns the cluster's ingest/query router.
func (c *Cluster) Router() *Router { return c.router }

// Topic returns the ingest topic — the durable input log, shared with the
// batch layer (store.Rebuild over this topic is the cluster's oracle).
func (c *Cluster) Topic() *mqlog.Topic { return c.topic }

// Lag returns unconsumed messages across the group (router buffers not
// included; Flush first for an end-to-end figure).
func (c *Cluster) Lag() uint64 { return c.broker.Lag(c.cfg.Group, c.topic) }

// Drain flushes the router and blocks until every live node is serving
// its current assignment and the group lag is zero — the quiesced state
// experiments query in. It requires at least one live node (an empty
// cluster can never drain a non-empty log).
func (c *Cluster) Drain() error {
	c.router.Flush()
	for {
		c.mu.Lock()
		closed, n := c.closed, len(c.nodes)
		c.mu.Unlock()
		if closed {
			return fmt.Errorf("dstore: cluster closed while draining")
		}
		if n == 0 {
			return fmt.Errorf("dstore: no live nodes to drain %d lagging messages", c.Lag())
		}
		gen := c.group.Generation()
		settled := true
		for _, node := range c.liveNodes() {
			if g, serving := node.serving(); !serving || g != gen {
				settled = false
				break
			}
		}
		if settled && c.group.Generation() == gen && c.Lag() == 0 {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TruncateBelow fences the cluster's serving state to log offsets at or
// above ends[pid] per partition: it installs the per-partition floor and
// forces a group rebalance, so every node rebuilds its store from the log
// with the fenced prefix excluded. This is the speed-layer truncation
// move of a Lambda handoff — once a batch view is frozen at ends
// (store.FreezeAt over the same topic), the cluster sheds the covered
// prefix and the two layers partition the log exactly, no double counting.
// Floors only ratchet forward: a bound below the current floor keeps the
// higher fence (un-truncating would resurrect history the batch layer
// already owns). The call returns once the fence is installed; nodes
// rebuild asynchronously — Drain to wait for the cutover.
func (c *Cluster) TruncateBelow(ends []uint64) error {
	if len(ends) != c.topic.Partitions() {
		return core.Errf("Cluster", "ends", "%d bounds for %d partitions", len(ends), c.topic.Partitions())
	}
	next := append([]uint64(nil), ends...)
	// The merge-and-store runs under the cluster lock so two concurrent
	// truncations cannot interleave their ratchets and regress a floor.
	c.mu.Lock()
	if prev := c.floors.Load(); prev != nil {
		for pid, f := range *prev {
			if next[pid] < f {
				next[pid] = f
			}
		}
	}
	c.floors.Store(&next)
	c.mu.Unlock()
	c.group.ForceRebalance()
	return nil
}

// Floors returns the current per-partition offset fence (nil before the
// first TruncateBelow).
func (c *Cluster) Floors() []uint64 {
	p := c.floors.Load()
	if p == nil {
		return nil
	}
	return append([]uint64(nil), *p...)
}

// floor returns the partition's current offset fence (0 = none).
func (c *Cluster) floor(pid int) uint64 {
	p := c.floors.Load()
	if p == nil {
		return 0
	}
	return (*p)[pid]
}

// Checkpoint snapshots every live node's store into
// CheckpointDir/<node name> (manifest + data pair, see
// store.WriteCheckpoint), stamped with the node's committed offsets, its
// partition assignment, and the floors in force. Each snapshot is taken
// on the owning node's event loop — the store's only writer — so it
// captures exactly the committed state, and a later recovery with the
// same assignment and floors restores it and replays only the log suffix
// past the recorded offsets. Returns the first node error; nodes after a
// failing one are still attempted.
func (c *Cluster) Checkpoint() error {
	if c.cfg.CheckpointDir == "" {
		return fmt.Errorf("dstore: Checkpoint requires Config.CheckpointDir")
	}
	var first error
	for _, n := range c.liveNodes() {
		if err := n.requestCheckpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FlushHot settles pending hot-key batches on every serving node, as
// store.FlushHot does for one store.
func (c *Cluster) FlushHot() {
	for _, n := range c.liveNodes() {
		if st := n.currentStore(); st != nil {
			st.FlushHot()
		}
	}
}

// Stats aggregates node counters and store stats across the cluster.
func (c *Cluster) Stats() Stats {
	nodes := c.liveNodes()
	out := Stats{Nodes: len(nodes), Lag: c.Lag()}
	for _, n := range nodes {
		out.Recoveries += n.recoveries.Load()
		out.Applied += n.applied.Load()
		out.Replayed += n.replayed.Load()
		out.Rejected += n.rejected.Load()
		out.CheckpointRestores += n.ckptRestores.Load()
		if st := n.currentStore(); st != nil {
			out.Store.Add(st.Stats())
		}
	}
	return out
}

// Close stops every node, then closes the ingest topic — for a durable
// topic that is the final flush+fsync of its segment files. The broker
// and topic's in-memory state survive (a closed cluster's log can still
// be replayed into a batch store). Returns the topic's close error, if
// any.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.nodes = make(map[string]*Node)
	c.mu.Unlock()
	for _, n := range nodes {
		c.group.Leave(n.name)
		n.stop()
	}
	return c.topic.Close()
}
