package dstore

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// newTestCluster builds a cluster with three metric families registered
// (distinct, frequency, quantiles) and no per-node budgets, so cluster
// answers are exactly comparable to a single-store oracle.
func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Store.BucketWidth == 0 {
		cfg.Store = store.Config{Shards: 4, BucketWidth: 100, RingBuckets: 64}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for name, mk := range testProtos(t) {
		if err := c.RegisterMetric(name, mk); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func testProtos(t testing.TB) map[string]store.Prototype {
	t.Helper()
	protos := map[string]store.Prototype{}
	hll, err := store.NewDistinctProto(12, 11)
	if err != nil {
		t.Fatal(err)
	}
	protos["uniq"] = hll
	cm, err := store.NewFreqProto(256, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	protos["hits"] = cm
	qd, err := store.NewQuantileProto(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	protos["lat"] = qd
	return protos
}

// feed produces a deterministic Zipf-keyed stream through the router
// across all three metrics and returns the stream-time high water.
func feed(t *testing.T, c *Cluster, events int, seed uint64) int64 {
	t.Helper()
	rng := workload.NewRNG(seed)
	z := workload.NewZipf(rng, 48, 1.2)
	r := c.Router()
	var now int64
	for i := 0; i < events; i++ {
		now = int64(i)
		key := fmt.Sprintf("k%d", z.Draw())
		item := fmt.Sprintf("u%d", rng.Uint64()%4096)
		val := rng.Uint64() % 50000
		for _, obs := range []store.Observation{
			{Metric: "uniq", Key: key, Item: item, Time: now},
			{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: now},
			{Metric: "lat", Key: key, Value: val, Time: now},
		} {
			if err := r.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return now
}

// oracle rebuilds a single store from the cluster's ingest log — the
// same stream, one process.
func oracle(t *testing.T, c *Cluster) *store.Store {
	t.Helper()
	st, _, err := store.Rebuild(c.cfg.Store, testProtos(t), c.Topic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// assertMatchesOracle compares every key's cardinality, per-item
// frequency, and quantile answers between the cluster and the oracle.
// Per-key observation order is identical on both sides (one key = one
// partition = one log order), so the sketch answers must be *equal*, not
// merely close.
func assertMatchesOracle(t *testing.T, c *Cluster, o *store.Store, to int64, context string) int {
	t.Helper()
	r := c.Router()
	keys := o.Keys("uniq")
	if len(keys) == 0 {
		t.Fatalf("%s: oracle has no keys", context)
	}
	clusterKeys := r.Keys("uniq")
	if len(clusterKeys) != len(keys) {
		t.Fatalf("%s: cluster serves %d keys, oracle has %d", context, len(clusterKeys), len(keys))
	}
	checked := 0
	for _, key := range keys {
		cu, err := r.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatalf("%s: cluster uniq query %s: %v", context, key, err)
		}
		ou, err := o.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cu.(*store.Distinct).Estimate(), ou.(*store.Distinct).Estimate(); got != want {
			t.Fatalf("%s: uniq[%s] cluster %v != oracle %v", context, key, got, want)
		}
		ch, err := r.QueryPoint("hits", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		oh, err := o.QueryPoint("hits", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 16; u++ {
			item := fmt.Sprintf("u%d", u)
			if got, want := ch.(*store.Freq).Count(item), oh.(*store.Freq).Count(item); got != want {
				t.Fatalf("%s: hits[%s][%s] cluster %d != oracle %d", context, key, item, got, want)
			}
		}
		cl, err := r.QueryPoint("lat", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		ol, err := o.QueryPoint("lat", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		for _, phi := range []float64{0.5, 0.9, 0.99} {
			if got, want := cl.(*store.Quantiles).Quantile(phi), ol.(*store.Quantiles).Quantile(phi); got != want {
				t.Fatalf("%s: lat[%s] p%v cluster %d != oracle %d", context, key, phi, got, want)
			}
		}
		checked++
	}
	return checked
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{Retention: -1}); err == nil {
		t.Fatal("negative retention accepted")
	}
	c := newTestCluster(t, Config{Partitions: 2})
	if err := c.RegisterMetric("", nil); err == nil {
		t.Fatal("empty metric accepted")
	}
	if err := c.RegisterMetric("x", nil); err == nil {
		t.Fatal("nil prototype accepted")
	}
	if err := c.RegisterMetric("uniq", testProtos(t)["uniq"]); err == nil {
		t.Fatal("duplicate metric accepted")
	}
	if _, err := c.StartNode(); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterMetric("late", testProtos(t)["uniq"]); err == nil {
		t.Fatal("metric registered after nodes started")
	}
	if err := c.StopNode("node-99"); err == nil {
		t.Fatal("unknown node stop accepted")
	}
	if err := c.Router().Observe(store.Observation{Metric: "nope", Key: "k", Time: 1}); err == nil {
		t.Fatal("unregistered metric observed")
	}
	if err := c.Router().Observe(store.Observation{Metric: "uniq", Key: "k", Time: -1}); err == nil {
		t.Fatal("negative time observed")
	}
	// An empty key would round-robin by value hash in the log, scattering
	// one series across partitions owned by different nodes.
	if err := c.Router().Observe(store.Observation{Metric: "uniq", Key: "", Item: "x", Time: 1}); err == nil {
		t.Fatal("empty key observed")
	}
}

func TestClusterServesAndMatchesOracle(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 8})
	for i := 0; i < 4; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	to := feed(t, c, 4000, 21)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	o := oracle(t, c)
	if n := assertMatchesOracle(t, c, o, to, "steady state"); n == 0 {
		t.Fatal("nothing checked")
	}
	st := c.Stats()
	if st.Nodes != 4 || st.Applied+st.Replayed == 0 || st.Lag != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestClusterKillRejoinMatchesOracle is T3.1's correctness half and this
// package's race-suite anchor: ingest a stream, kill a node (survivors
// recover its partitions from the log), verify every query still matches
// the single-store oracle, rejoin a node (everyone rebalances and
// recovers), and verify again.
func TestClusterKillRejoinMatchesOracle(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 8})
	for i := 0; i < 4; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	to := feed(t, c, 3000, 33)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	o := oracle(t, c)
	assertMatchesOracle(t, c, o, to, "before kill")

	victim := c.NodeNames()[1]
	if err := c.StopNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.NodeNames()); got != 3 {
		t.Fatalf("%d nodes after kill, want 3", got)
	}
	assertMatchesOracle(t, c, o, to, "after kill")

	if _, err := c.StartNode(); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, c, o, to, "after rejoin")

	// And the cluster keeps ingesting correctly after the cycle.
	to = feed(t, c, 1500, 34)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, c, oracle(t, c), to, "after rejoin + more ingest")
}

// TestClusterKillUnderIngest races a node kill against live producers:
// at-least-once consumption plus rebuild-from-log recovery must neither
// lose nor double-count a single observation.
func TestClusterKillUnderIngest(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 8})
	for i := 0; i < 3; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	const (
		producers   = 4
		perProducer = 2000
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.Router()
			for i := 0; i < perProducer; i++ {
				key := fmt.Sprintf("k%d", (p*perProducer+i)%64)
				if err := r.Observe(store.Observation{
					Metric: "uniq",
					Key:    key,
					Item:   fmt.Sprintf("u%d-%d", p, i),
					Time:   int64(i),
				}); err != nil {
					panic(err)
				}
			}
		}(p)
	}
	// Kill and rejoin mid-stream.
	victim := c.NodeNames()[0]
	if err := c.StopNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartNode(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	o := oracle(t, c)
	assertMatchesOracle(t, c, o, int64(perProducer), "kill under ingest")
}

// TestQueryMergedScattersAcrossNodes pins the scatter-gather path: a
// multi-key union answered by per-node partials combined through
// CombineSnapshots must equal the oracle's own multi-key combine.
func TestQueryMergedScattersAcrossNodes(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 8})
	for i := 0; i < 4; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	to := feed(t, c, 3000, 55)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	o := oracle(t, c)
	keys := o.Keys("uniq")
	if len(keys) < 8 {
		t.Fatalf("only %d keys", len(keys))
	}

	got, err := c.Router().QueryMerged("uniq", keys, 0, to)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]store.Synopsis, 0, len(keys))
	for _, key := range keys {
		syn, err := o.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, syn)
	}
	proto := testProtos(t)["uniq"]
	want, err := store.CombineSnapshots(proto, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := got.(*store.Distinct).Estimate(), want.(*store.Distinct).Estimate(); g != w {
		t.Fatalf("scatter-gather union %v != oracle union %v", g, w)
	}

	// A union contains each series once: duplicated input keys must not
	// change the answer (merging a key twice doubles additive counts).
	doubled := append(append([]string(nil), keys...), keys...)
	again, err := c.Router().QueryMerged("uniq", doubled, 0, to)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := again.(*store.Distinct).Estimate(), want.(*store.Distinct).Estimate(); g != w {
		t.Fatalf("duplicated-keys union %v != deduplicated union %v", g, w)
	}
	hitsOnce, err := c.Router().QueryMerged("hits", keys[:4], 0, to)
	if err != nil {
		t.Fatal(err)
	}
	hitsTwice, err := c.Router().QueryMerged("hits", append(append([]string(nil), keys[:4]...), keys[:4]...), 0, to)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		item := fmt.Sprintf("u%d", u)
		if a, b := hitsOnce.(*store.Freq).Count(item), hitsTwice.(*store.Freq).Count(item); a != b {
			t.Fatalf("duplicate keys doubled additive count for %s: %d vs %d", item, a, b)
		}
	}

	if _, err := c.Router().QueryMerged("nope", keys, 0, to); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := c.Router().QueryMerged("uniq", keys, 5, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestPerNodeBudgetsPartitionState pins the scale-out motivation: the
// keyspace's working set overflows one node's byte budget but fits the
// aggregate budget of eight, so the single node evicts constantly while
// the cluster holds every series (T3.1 measures the throughput side of
// this; here we pin the state side deterministically).
func TestPerNodeBudgetsPartitionState(t *testing.T) {
	// Per-node budget 4 x 128 KB = 512 KB: the ~2 MB working set below
	// overflows one node 4x but fits eight nodes (~256 KB each) with 2x
	// slack for hash skew across partitions and shards.
	budgeted := store.Config{Shards: 4, BucketWidth: 1 << 20, RingBuckets: 2, MaxShardBytes: 128 << 10}
	run := func(nodes int) Stats {
		c := newTestCluster(t, Config{Partitions: 8, Store: budgeted})
		for i := 0; i < nodes; i++ {
			if _, err := c.StartNode(); err != nil {
				t.Fatal(err)
			}
		}
		r := c.Router()
		// ~512 HLL series at 4 KB each = ~2 MB of working set vs a
		// 256 KB per-node budget.
		for i := 0; i < 4096; i++ {
			if err := r.Observe(store.Observation{
				Metric: "uniq",
				Key:    fmt.Sprintf("k%d", i%512),
				Item:   fmt.Sprintf("u%d", i),
				Time:   1,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Drain(); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	one, eight := run(1), run(8)
	if one.Store.EvictedSize == 0 {
		t.Fatal("single node never evicted despite an overflowing working set")
	}
	if eight.Store.EvictedSize != 0 {
		t.Fatalf("8-node cluster evicted %d entries despite 8x aggregate budget", eight.Store.EvictedSize)
	}
	if eight.Store.Entries != 512 {
		t.Fatalf("8-node cluster holds %d series, want all 512", eight.Store.Entries)
	}
}

// A store config that cannot construct must fail at New, not leave every
// node retrying recovery forever with Drain hanging.
func TestClusterRejectsInvalidStoreConfig(t *testing.T) {
	if _, err := New(Config{Store: store.Config{Shards: -1}}); err == nil {
		t.Fatal("invalid per-node store config accepted")
	}
	if _, err := New(Config{Store: store.Config{MaxShardBytes: -1}}); err == nil {
		t.Fatal("invalid byte budget accepted")
	}
}

// The acceptance contract of the batched serving API: a multi-key
// aggregate QueryRequest over the cluster answers byte-identically to
// issuing per-key queries and combining them through CombineSnapshots in
// sorted key order — for every synopsis family, across several nodes.
func TestClusterAggregateByteIdenticalToPerKeyCombine(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 8})
	for i := 0; i < 3; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	to := feed(t, c, 6000, 31)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	r := c.Router()
	keys := r.Keys("uniq") // sorted, deduplicated
	if len(keys) < 8 {
		t.Fatalf("only %d keys", len(keys))
	}
	protos := testProtos(t)
	for metric, proto := range protos {
		agg, err := r.Query(store.QueryRequest{Metric: metric, Keys: keys, From: 0, To: to + 1, Aggregate: true})
		if err != nil {
			t.Fatal(err)
		}
		var parts []store.Synopsis
		for _, key := range keys {
			syn, err := r.QueryPoint(metric, key, 0, to)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, syn)
		}
		want, err := store.CombineSnapshots(proto, parts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(agg.Raw(), want) {
			t.Fatalf("%s: aggregate answer differs from per-key Query + CombineSnapshots", metric)
		}
	}
	// QueryMerged is the same path through the legacy spelling.
	merged, err := r.QueryMerged("uniq", keys, 0, to)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := r.Query(store.QueryRequest{Metric: "uniq", Keys: keys, From: 0, To: to + 1, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, agg.Raw()) {
		t.Fatal("QueryMerged diverges from the aggregate Query it wraps")
	}
}

// A fan-out that cannot resolve its owners must say which partitions and
// nodes were unreachable, not fail opaquely.
func TestQueryReportsUnreachableNodes(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 4})
	// No nodes at all: every partition is unowned, and the error names the
	// partitions the requested keys hash to.
	_, err := c.Router().Query(store.QueryRequest{
		Metric: "uniq", Keys: []string{"a", "b", "c", "d", "e", "f"}, From: 0, To: 10, Aggregate: true,
	})
	if err == nil {
		t.Fatal("query on an empty cluster succeeded")
	}
	if !strings.Contains(err.Error(), "unowned") || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("error does not name unowned partitions: %v", err)
	}
	if _, err := c.Router().QueryMerged("uniq", []string{"a", "b"}, 0, 10); err == nil ||
		!strings.Contains(err.Error(), "unowned") {
		t.Fatalf("QueryMerged error does not name unreachable state: %v", err)
	}
}
