package dstore

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/workload"
)

// feedAt is feed with a stream-time base, so a second batch continues
// where the first stopped instead of rewriting history buckets.
func feedAt(t *testing.T, c *Cluster, events int, seed uint64, base int64) int64 {
	t.Helper()
	rng := workload.NewRNG(seed)
	z := workload.NewZipf(rng, 48, 1.2)
	r := c.Router()
	now := base
	for i := 0; i < events; i++ {
		now = base + int64(i)
		key := fmt.Sprintf("k%d", z.Draw())
		item := fmt.Sprintf("u%d", rng.Uint64()%4096)
		val := rng.Uint64() % 50000
		for _, obs := range []store.Observation{
			{Metric: "uniq", Key: key, Item: item, Time: now},
			{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: now},
			{Metric: "lat", Key: key, Value: val, Time: now},
		} {
			if err := r.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return now
}

func durableClusterConfig(dir string) Config {
	return Config{
		Partitions:    8,
		Store:         store.Config{Shards: 4, BucketWidth: 100, RingBuckets: 64},
		Durable:       &mqlog.DurableConfig{Dir: filepath.Join(dir, "log"), SyncEveryAppend: true},
		CheckpointDir: filepath.Join(dir, "ckpt"),
	}
}

// TestClusterRestartRestoresCheckpointAndReplaysSuffix is the precise
// restart accounting check: a single node owns every partition, so the
// reopened cluster's first recovery sees exactly the checkpoint's
// assignment and must restore the snapshot and replay only the log
// suffix past it — not one message more.
func TestClusterRestartRestoresCheckpointAndReplaysSuffix(t *testing.T) {
	dir := t.TempDir()
	cfg := durableClusterConfig(dir)

	c1 := newTestCluster(t, cfg)
	if _, err := c1.StartNode(); err != nil {
		t.Fatal(err)
	}
	feedAt(t, c1, 400, 7, 0)
	if err := c1.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	to := feedAt(t, c1, 100, 8, 400)
	if err := c1.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCluster(t, cfg)
	if got := c2.Topic().DurabilityStats().RecoveredRecords; got != 1500 {
		t.Fatalf("reopened log recovered %d records, want 1500", got)
	}
	if _, err := c2.StartNode(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Drain(); err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.CheckpointRestores != 1 {
		t.Fatalf("CheckpointRestores = %d, want 1", st.CheckpointRestores)
	}
	// 400 events were checkpointed; only the 100 post-checkpoint events
	// (3 observations each) may replay.
	if st.Replayed != 300 {
		t.Fatalf("Replayed = %d, want 300 (the post-checkpoint suffix)", st.Replayed)
	}
	if st.Applied != 0 {
		t.Fatalf("Applied = %d, want 0 (no live appends since restart)", st.Applied)
	}
	o := oracle(t, c2)
	if n := assertMatchesOracle(t, c2, o, to, "after restart"); n == 0 {
		t.Fatal("nothing checked")
	}

	// The restored cluster keeps serving: new appends land on the node
	// event loop and answers still match a full replay.
	to = feedAt(t, c2, 100, 9, 500)
	if err := c2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := c2.Stats().Applied; got != 300 {
		t.Fatalf("Applied = %d after post-restart feed, want 300", got)
	}
	o = oracle(t, c2)
	assertMatchesOracle(t, c2, o, to, "after restart + new traffic")
}

// TestClusterRestartMultiNodeMatchesOracle restarts a three-node cluster
// over its durable directory. Nodes join one at a time, so only the
// final generation's assignment matches the three-node checkpoints —
// earlier generations fall back to full replays — but once membership
// matches, every node seeds from its snapshot and the cluster's answers
// equal a single store rebuilt from the recovered log.
func TestClusterRestartMultiNodeMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	cfg := durableClusterConfig(dir)

	c1 := newTestCluster(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := c1.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	feedAt(t, c1, 600, 17, 0)
	if err := c1.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	to := feedAt(t, c1, 200, 18, 600)
	if err := c1.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCluster(t, cfg)
	if got := c2.Topic().DurabilityStats().RecoveredRecords; got != 2400 {
		t.Fatalf("reopened log recovered %d records, want 2400", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := c2.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Drain(); err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.CheckpointRestores == 0 {
		t.Fatal("no recovery restored a checkpoint; final assignment should match the snapshot's")
	}
	o := oracle(t, c2)
	if n := assertMatchesOracle(t, c2, o, to, "after multi-node restart"); n == 0 {
		t.Fatal("nothing checked")
	}
}
