// trace_wire.go wires the cluster into a trace.Tracer, following the
// SetTelemetry discipline (atomic wiring, nil = no-op, node stores
// re-wired on every recovery rebuild). The cluster is also where trace
// context crosses the log: Router.Observe encodes a sampled
// observation's context into a mqlog record header (trace.HeaderKey),
// and the node event loop decodes it on the far side, stitching the
// append, fetch and apply spans into one trace.
package dstore

import (
	"repro/internal/mqlog"
	"repro/internal/trace"
)

// SetTracer wires the cluster's ingest and query paths to tr. Safe to
// call on a live cluster: the router and node event loops pick the
// tracer up atomically, stores already serving are wired immediately,
// and each node re-wires its fresh store when it is next rebuilt. A
// nil tracer is a no-op.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	c.trc.Store(tr)
	for _, n := range c.liveNodes() {
		if st := n.currentStore(); st != nil {
			st.SetTracer(tr)
		}
	}
}

// tracer returns the wired tracer, nil when tracing is off.
func (c *Cluster) tracer() *trace.Tracer { return c.trc.Load() }

// headerContext extracts the trace context a router attached to a
// record's headers; zero when the record is untraced.
func headerContext(hdrs []mqlog.Header) trace.Context {
	for _, h := range hdrs {
		if h.Key == trace.HeaderKey {
			return trace.DecodeContext(h.Value)
		}
	}
	return trace.Context{}
}

// firstTracedContext scans a producer batch for the first record
// carrying a trace header — the batch's representative for the
// append-side span (one span per flush, not per record).
func firstTracedContext(recs []mqlog.Record) trace.Context {
	for i := range recs {
		if ctx := headerContext(recs[i].Headers); ctx.Valid() {
			return ctx
		}
	}
	return trace.Context{}
}
