// telemetry.go wires the cluster into a telemetry.Registry: aggregate
// node counters and lag at scrape time, recovery-replay and
// scatter-gather latency histograms on the hot paths (nil-gated), the
// ingest topic's and consumer group's mqlog metrics, and per-node store
// metrics (layer="dstore", node=<name>) re-bound on every recovery
// rebuild.
package dstore

import (
	"time"

	"repro/internal/telemetry"
)

// clusterTel is the cluster's published telemetry wiring; nodes and the
// router read it through an atomic pointer so SetTelemetry can be
// called while the cluster is live.
type clusterTel struct {
	reg      *telemetry.Registry
	recovery *telemetry.Histogram
	scatter  *telemetry.Histogram
}

// SetTelemetry registers the cluster's metrics with reg. Safe to call
// on a live cluster: node event loops pick the wiring up atomically,
// and each node's store is (re-)instrumented when it is next rebuilt —
// stores already serving are wired immediately. A nil registry is a
// no-op.
func (c *Cluster) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	labels := []string{"layer", "dstore"}
	reg.GaugeFunc("analytics_dstore_nodes",
		"Live cluster nodes.",
		func() float64 { return float64(len(c.liveNodes())) }, labels...)
	reg.GaugeFunc("analytics_dstore_lag",
		"Unconsumed ingest-log messages across the group.",
		func() float64 { return float64(c.Lag()) }, labels...)
	reg.CounterFunc("analytics_dstore_recoveries_total",
		"Completed node recoveries across live nodes (includes first starts).",
		func() uint64 { return c.Stats().Recoveries }, labels...)
	reg.CounterFunc("analytics_dstore_applied_total",
		"Observations applied by live node event loops.",
		func() uint64 { return c.Stats().Applied }, labels...)
	reg.CounterFunc("analytics_dstore_replayed_total",
		"Observations applied by recovery replays on live nodes.",
		func() uint64 { return c.Stats().Replayed }, labels...)
	reg.CounterFunc("analytics_dstore_rejected_total",
		"Messages dropped by decode or store errors on live nodes.",
		func() uint64 { return c.Stats().Rejected }, labels...)
	reg.CounterFunc("analytics_dstore_checkpoint_restores_total",
		"Node recoveries seeded from a checkpoint (suffix replay) on live nodes.",
		func() uint64 { return c.Stats().CheckpointRestores }, labels...)
	reg.CounterFunc("analytics_dstore_fence_rejections_total",
		"Generation-fenced commits refused (stale owner or mid-rebalance).",
		func() uint64 { return c.fenceRejected.Load() }, labels...)
	reg.CounterFunc("analytics_dstore_unreachable_total",
		"Query fan-outs failed on unowned partitions or unreachable nodes.",
		func() uint64 { return c.unreachable.Load() }, labels...)

	tel := &clusterTel{
		reg: reg,
		recovery: reg.Histogram("analytics_dstore_recovery_seconds",
			"Duration of completed node recoveries (store rebuild + replay).",
			0, 1.0, 64, labels...),
		scatter: reg.Histogram("analytics_dstore_scatter_gather_seconds",
			"Scatter-gather fan-out duration of router queries.",
			0, 10e-3, 64, labels...),
	}
	c.tel.Store(tel)

	c.topic.SetTelemetry(reg)
	c.group.SetTelemetry(reg)
	// Instrument stores already serving; recovering nodes wire their
	// fresh store themselves when the rebuild completes.
	for _, n := range c.liveNodes() {
		if st := n.currentStore(); st != nil {
			st.SetTelemetry(reg, "layer", "dstore", "node", n.name)
		}
	}
}

// observeRecovery records a completed recovery's duration.
func (c *Cluster) observeRecovery(start time.Time) {
	if t := c.tel.Load(); t != nil {
		t.recovery.ObserveSince(start)
	}
}
