package dstore

import (
	"testing"

	"repro/internal/store"
)

// TestTruncateBelowShedsCoveredPrefix is the Lambda handoff from the
// cluster's side: freeze a batch view at the topic's end offsets, fence
// the cluster to them, and the cluster's rebuilt stores must contain only
// post-fence observations — while batch view + cluster still partition
// the log exactly (their per-key merged answers equal a full-log oracle).
func TestTruncateBelowShedsCoveredPrefix(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 8})
	for i := 0; i < 3; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	to := feed(t, c, 1500, 77)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	// Freeze the batch view at the covered prefix and fence the cluster.
	ends := c.Topic().EndOffsets()
	view, err := store.FreezeAt(c.cfg.Store, testProtos(t), c.Topic(), ends, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TruncateBelow(ends); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	// The rebuilt cluster holds nothing: everything is below the fence.
	if st := c.Stats().Store; st.Observed != 0 {
		t.Fatalf("cluster still holds %d observations after truncation", st.Observed)
	}

	// Post-fence traffic lands only in the cluster.
	feed(t, c, 800, 78)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	full := oracle(t, c) // full-log single store
	r := c.Router()
	protos := testProtos(t)
	mismatch := 0
	for _, key := range full.Keys("uniq") {
		want, err := full.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		b, err := view.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := store.CombineSnapshots(protos["uniq"], b, s)
		if err != nil {
			t.Fatal(err)
		}
		if merged.(*store.Distinct).Estimate() != want.(*store.Distinct).Estimate() {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Fatalf("%d keys where batch+speed merge != full-log oracle", mismatch)
	}

	// Floors ratchet: an older (lower) bound must not resurrect history.
	low := make([]uint64, len(ends))
	if err := c.TruncateBelow(low); err != nil {
		t.Fatal(err)
	}
	for pid, f := range c.Floors() {
		if f != ends[pid] {
			t.Fatalf("floor %d regressed to %d, fence was %d", pid, f, ends[pid])
		}
	}

	// Validation.
	if err := c.TruncateBelow([]uint64{1}); err == nil {
		t.Fatal("mismatched bounds length accepted")
	}
}
