// Package moments implements frequency-moment estimation over streams —
// the "Estimating Moments" row of the tutorial's Table 1, rooted in the
// Alon–Matias–Szegedy paper the survey credits with introducing randomized
// sketching.
//
// F_k = sum_i f_i^k over item frequencies f_i: F0 is the distinct count,
// F1 the stream length, F2 the repeat rate / self-join size (the AMS
// headline result), and higher moments measure skew.
package moments

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/workload"
)

// AMSF2 estimates the second frequency moment with the tug-of-war sketch:
// each of rows x cols counters accumulates +-1 per item under a 4-wise
// independent sign (tabulation hashing); each counter's square is an
// unbiased F2 estimate, cols are averaged to shrink variance, and rows are
// median-combined for confidence. Error is O(F2/sqrt(cols)) per row.
type AMSF2 struct {
	rows, cols int
	counters   [][]int64
	tabs       []*hashutil.Tabulation
	n          uint64
}

// NewAMSF2 returns a tug-of-war sketch with rows x cols counters.
func NewAMSF2(rows, cols int, seed uint64) (*AMSF2, error) {
	if rows <= 0 {
		return nil, core.Errf("AMSF2", "rows", "%d must be positive", rows)
	}
	if cols <= 0 {
		return nil, core.Errf("AMSF2", "cols", "%d must be positive", cols)
	}
	counters := make([][]int64, rows)
	tabs := make([]*hashutil.Tabulation, rows*cols)
	fam := hashutil.NewFamily(seed)
	for r := range counters {
		counters[r] = make([]int64, cols)
		for c := 0; c < cols; c++ {
			tabs[r*cols+c] = hashutil.NewTabulation(fam.Seed(r*cols + c))
		}
	}
	return &AMSF2{rows: rows, cols: cols, counters: counters, tabs: tabs}, nil
}

// Update adds count occurrences of the keyed item (negative counts model
// deletions; AMS is a turnstile sketch).
func (a *AMSF2) Update(key uint64, count int64) {
	if count > 0 {
		a.n += uint64(count)
	}
	for r := 0; r < a.rows; r++ {
		for c := 0; c < a.cols; c++ {
			a.counters[r][c] += a.tabs[r*a.cols+c].Sign(key) * count
		}
	}
}

// Estimate returns the F2 estimate: median over rows of the mean over
// columns of squared counters.
func (a *AMSF2) Estimate() float64 {
	rowEsts := make([]float64, a.rows)
	for r := 0; r < a.rows; r++ {
		sum := 0.0
		for c := 0; c < a.cols; c++ {
			v := float64(a.counters[r][c])
			sum += v * v
		}
		rowEsts[r] = sum / float64(a.cols)
	}
	sort.Float64s(rowEsts)
	mid := a.rows / 2
	if a.rows%2 == 1 {
		return rowEsts[mid]
	}
	return (rowEsts[mid-1] + rowEsts[mid]) / 2
}

// Items returns the positive count mass absorbed.
func (a *AMSF2) Items() uint64 { return a.n }

// Bytes returns the counter footprint (tabulation tables excluded; they are
// seed-reconstructible constants).
func (a *AMSF2) Bytes() int { return a.rows*a.cols*8 + 32 }

// Merge adds another sketch counter-wise; valid because the sign functions
// are identical for equal seeds, making the combined sketch the sketch of
// the concatenated stream.
func (a *AMSF2) Merge(other *AMSF2) error {
	if other == nil || a.rows != other.rows || a.cols != other.cols {
		return core.ErrIncompatible
	}
	// Seed equality is proxied by comparing one tabulation output.
	if a.tabs[0].Hash(12345) != other.tabs[0].Hash(12345) {
		return core.ErrIncompatible
	}
	for r := range a.counters {
		for c := range a.counters[r] {
			a.counters[r][c] += other.counters[r][c]
		}
	}
	a.n += other.n
	return nil
}

// FkSampler estimates the k-th frequency moment (k > 2) with the original
// AMS sampling estimator: sample a uniform position, count subsequent
// occurrences r of the sampled item, output n*(r^k - (r-1)^k). Means over
// many samplers reduce variance. It is the baseline the survey's
// Indyk–Woodruff and BJKST citations improve upon asymptotically.
type FkSampler struct {
	k        int
	samplers []fkOne
	rng      *workload.RNG
	n        uint64
}

type fkOne struct {
	target uint64 // stream position whose item we sample (reservoir style)
	item   uint64
	count  uint64
}

// NewFkSampler returns an estimator for F_k using the given number of
// independent samplers.
func NewFkSampler(k, samplers int, seed uint64) (*FkSampler, error) {
	if k < 1 {
		return nil, core.Errf("FkSampler", "k", "%d must be >= 1", k)
	}
	if samplers <= 0 {
		return nil, core.Errf("FkSampler", "samplers", "%d must be positive", samplers)
	}
	return &FkSampler{k: k, samplers: make([]fkOne, samplers), rng: workload.NewRNG(seed)}, nil
}

// Update observes one item.
func (f *FkSampler) Update(item uint64) {
	f.n++
	for i := range f.samplers {
		s := &f.samplers[i]
		// Reservoir-sample the position: replace with probability 1/n.
		if f.rng.Uint64()%f.n == 0 {
			s.item = item
			s.count = 1
			continue
		}
		if s.count > 0 && s.item == item {
			s.count++
		}
	}
}

// Estimate returns the mean of the per-sampler unbiased F_k estimates.
func (f *FkSampler) Estimate() float64 {
	if f.n == 0 {
		return 0
	}
	total := 0.0
	live := 0
	for _, s := range f.samplers {
		if s.count == 0 {
			continue
		}
		live++
		r := float64(s.count)
		total += float64(f.n) * (math.Pow(r, float64(f.k)) - math.Pow(r-1, float64(f.k)))
	}
	if live == 0 {
		return 0
	}
	return total / float64(live)
}

// Items returns the stream length.
func (f *FkSampler) Items() uint64 { return f.n }

// Bytes returns the sampler footprint.
func (f *FkSampler) Bytes() int { return len(f.samplers)*24 + 24 }

// ExactMoments computes F0, F1, F2, ..., Fk exactly from a stream — the
// experiments' ground truth.
func ExactMoments(stream []uint64, maxK int) []float64 {
	counts := map[uint64]uint64{}
	for _, x := range stream {
		counts[x]++
	}
	out := make([]float64, maxK+1)
	out[0] = float64(len(counts))
	for _, c := range counts {
		for k := 1; k <= maxK; k++ {
			out[k] += math.Pow(float64(c), float64(k))
		}
	}
	return out
}
