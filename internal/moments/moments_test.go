package moments

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestAMSF2Validation(t *testing.T) {
	if _, err := NewAMSF2(0, 4, 1); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := NewAMSF2(4, 0, 1); err == nil {
		t.Fatal("cols=0 accepted")
	}
}

func TestAMSF2Accuracy(t *testing.T) {
	rng := workload.NewRNG(1)
	z := workload.NewZipf(rng, 1000, 1.1)
	stream := z.Stream(50000)
	truth := ExactMoments(stream, 2)[2]

	a, _ := NewAMSF2(5, 256, 7)
	for _, x := range stream {
		a.Update(x, 1)
	}
	est := a.Estimate()
	if rel := math.Abs(est-truth) / truth; rel > 0.2 {
		t.Fatalf("F2 relative error %.3f (est %.0f true %.0f)", rel, est, truth)
	}
}

func TestAMSF2Turnstile(t *testing.T) {
	a, _ := NewAMSF2(5, 128, 7)
	// Insert then fully delete: F2 must return to ~0.
	for i := uint64(0); i < 100; i++ {
		a.Update(i, 10)
	}
	for i := uint64(0); i < 100; i++ {
		a.Update(i, -10)
	}
	if est := a.Estimate(); est != 0 {
		t.Fatalf("fully-deleted stream F2 = %v, want 0", est)
	}
}

func TestAMSF2MergeEqualsConcat(t *testing.T) {
	full, _ := NewAMSF2(5, 64, 9)
	a, _ := NewAMSF2(5, 64, 9)
	b, _ := NewAMSF2(5, 64, 9)
	rng := workload.NewRNG(2)
	for i := 0; i < 10000; i++ {
		x := uint64(rng.Intn(500))
		full.Update(x, 1)
		if i%2 == 0 {
			a.Update(x, 1)
		} else {
			b.Update(x, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != full.Estimate() {
		t.Fatalf("merge differs from concat: %v vs %v", a.Estimate(), full.Estimate())
	}
	other, _ := NewAMSF2(5, 64, 10)
	if err := a.Merge(other); err == nil {
		t.Fatal("merged different seeds")
	}
}

func TestAMSF2UniformVsSkewed(t *testing.T) {
	// Qualitative shape check: F2 of a skewed stream far exceeds F2 of a
	// uniform stream of the same length, and the sketch must preserve the
	// ordering.
	rng := workload.NewRNG(3)
	uniform := workload.Uniform(rng, 20000, 10000)
	skewed := workload.NewZipf(rng, 10000, 1.5).Stream(20000)

	u, _ := NewAMSF2(5, 128, 11)
	s, _ := NewAMSF2(5, 128, 11)
	for _, x := range uniform {
		u.Update(x, 1)
	}
	for _, x := range skewed {
		s.Update(x, 1)
	}
	if s.Estimate() < 3*u.Estimate() {
		t.Fatalf("sketch lost skew ordering: skewed %v uniform %v", s.Estimate(), u.Estimate())
	}
}

func TestFkSamplerF1IsExactish(t *testing.T) {
	// F1 is the stream length; the estimator n*(r - (r-1)) = n for every
	// sampler, so the estimate must be exactly n.
	f, _ := NewFkSampler(1, 10, 5)
	for i := uint64(0); i < 5000; i++ {
		f.Update(i % 100)
	}
	if est := f.Estimate(); est != 5000 {
		t.Fatalf("F1 estimate %v, want 5000", est)
	}
}

func TestFkSamplerF3Ballpark(t *testing.T) {
	rng := workload.NewRNG(4)
	z := workload.NewZipf(rng, 200, 1.2)
	stream := z.Stream(30000)
	truth := ExactMoments(stream, 3)[3]

	f, _ := NewFkSampler(3, 800, 7)
	for _, x := range stream {
		f.Update(x)
	}
	est := f.Estimate()
	// The basic AMS estimator has high variance; require same order of
	// magnitude.
	if est < truth/4 || est > truth*4 {
		t.Fatalf("F3 estimate %v vs truth %v out of range", est, truth)
	}
}

func TestFkSamplerEmpty(t *testing.T) {
	f, _ := NewFkSampler(2, 10, 1)
	if est := f.Estimate(); est != 0 {
		t.Fatalf("empty estimate %v", est)
	}
}

func TestExactMoments(t *testing.T) {
	stream := []uint64{1, 1, 2, 3, 3, 3}
	m := ExactMoments(stream, 2)
	if m[0] != 3 {
		t.Fatalf("F0 %v", m[0])
	}
	if m[1] != 6 {
		t.Fatalf("F1 %v", m[1])
	}
	if m[2] != 4+1+9 {
		t.Fatalf("F2 %v", m[2])
	}
}

func BenchmarkAMSF2Update(b *testing.B) {
	a, _ := NewAMSF2(5, 256, 1)
	for i := 0; i < b.N; i++ {
		a.Update(uint64(i%1000), 1)
	}
}
