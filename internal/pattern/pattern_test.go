package pattern

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestSAXValidation(t *testing.T) {
	if _, err := NewSAX(1, 4, 100); err == nil {
		t.Fatal("alphabet=1 accepted")
	}
	if _, err := NewSAX(9, 4, 100); err == nil {
		t.Fatal("alphabet=9 accepted")
	}
	if _, err := NewSAX(4, 0, 100); err == nil {
		t.Fatal("frame=0 accepted")
	}
}

func TestSAXSymbolsTrackLevel(t *testing.T) {
	s, _ := NewSAX(4, 5, 200)
	rng := workload.NewRNG(1)
	var lowSyms, highSyms []byte
	// Feed a two-level square wave; low plateaus must map to low letters
	// and high plateaus to high letters.
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 100; i++ {
			if sym, ok := s.Update(-5 + rng.NormFloat64()*0.2); ok && rep > 2 {
				lowSyms = append(lowSyms, sym)
			}
		}
		for i := 0; i < 100; i++ {
			if sym, ok := s.Update(5 + rng.NormFloat64()*0.2); ok && rep > 2 {
				highSyms = append(highSyms, sym)
			}
		}
	}
	meanSym := func(syms []byte) float64 {
		total := 0.0
		for _, b := range syms {
			total += float64(b - 'a')
		}
		return total / float64(len(syms))
	}
	if len(lowSyms) == 0 || len(highSyms) == 0 {
		t.Fatal("no symbols emitted")
	}
	if meanSym(lowSyms) >= meanSym(highSyms) {
		t.Fatalf("symbol ordering broken: low %.2f high %.2f", meanSym(lowSyms), meanSym(highSyms))
	}
}

func TestSAXFrameCadence(t *testing.T) {
	s, _ := NewSAX(4, 8, 64)
	emitted := 0
	for i := 0; i < 80; i++ {
		if _, ok := s.Update(float64(i)); ok {
			emitted++
		}
	}
	if emitted != 10 {
		t.Fatalf("emitted %d symbols from 80 samples at frame 8", emitted)
	}
}

func TestShapeDetector(t *testing.T) {
	d, err := NewShapeDetector("abba")
	if err != nil {
		t.Fatal(err)
	}
	stream := "cabbabbaxabba"
	hits := 0
	for i := 0; i < len(stream); i++ {
		if d.Update(stream[i]) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("hits %d, want 3 (overlapping included)", hits)
	}
	if d.Hits() != 3 {
		t.Fatalf("Hits() %d", d.Hits())
	}
}

func TestShapeDetectorWildcard(t *testing.T) {
	d, _ := NewShapeDetector("a.c")
	hits := 0
	for _, b := range []byte("abcaxcazc") {
		if d.Update(b) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("wildcard hits %d, want 3", hits)
	}
}

func TestCEPSimpleRule(t *testing.T) {
	c, err := NewCEP(100)
	if err != nil {
		t.Fatal(err)
	}
	var lastVal float64
	c.AddRule(Rule{
		Name:      "high-temp",
		Condition: func(e Event) bool { return e.Type == "temp" && e.Value > 90 },
		Action:    func(e Event) { lastVal = e.Value },
	})
	c.Submit(Event{Type: "temp", Value: 50})
	c.Submit(Event{Type: "temp", Value: 95})
	c.Submit(Event{Type: "pressure", Value: 99})
	if c.Firings("high-temp") != 1 {
		t.Fatalf("firings %d", c.Firings("high-temp"))
	}
	if lastVal != 95 {
		t.Fatalf("action saw %v", lastVal)
	}
}

func TestCEPSequenceWithinWindow(t *testing.T) {
	c, _ := NewCEP(100)
	var pairs int
	c.AddSequence(SequenceRule{
		Name:   "login-then-wire",
		First:  func(e Event) bool { return e.Type == "login" },
		Then:   func(e Event) bool { return e.Type == "wire" && e.Value > 10000 },
		Window: 5,
		Action: func(first, then Event) { pairs++ },
	})
	c.Submit(Event{Type: "login"})
	c.Submit(Event{Type: "noise"})
	c.Submit(Event{Type: "wire", Value: 50000}) // within window -> fires
	c.Submit(Event{Type: "login"})
	for i := 0; i < 6; i++ {
		c.Submit(Event{Type: "noise"})
	}
	c.Submit(Event{Type: "wire", Value: 50000}) // first expired -> no fire
	if pairs != 1 {
		t.Fatalf("sequence fired %d times, want 1", pairs)
	}
	if c.Firings("login-then-wire") != 1 {
		t.Fatalf("firings %d", c.Firings("login-then-wire"))
	}
}

func TestCEPQueueBounded(t *testing.T) {
	c, _ := NewCEP(3)
	c.AddSequence(SequenceRule{
		Name:   "seq",
		First:  func(e Event) bool { return e.Type == "a" },
		Then:   func(e Event) bool { return e.Type == "b" },
		Window: 1000,
	})
	for i := 0; i < 100; i++ {
		c.Submit(Event{Type: "a"})
	}
	if got := len(c.pending[0]); got > 3 {
		t.Fatalf("pending queue grew to %d", got)
	}
}

func TestEmergingScorer(t *testing.T) {
	e, err := NewEmergingScorer(100)
	if err != nil {
		t.Fatal(err)
	}
	// Reference window: steady mix of "old".
	for i := 0; i < 100; i++ {
		e.Update("old")
	}
	// Current window: "new" bursts in.
	for i := 0; i < 50; i++ {
		e.Update("new")
	}
	if gOld, gNew := e.GrowthRate("old"), e.GrowthRate("new"); gNew <= gOld {
		t.Fatalf("emerging key not scored higher: new %v old %v", gNew, gOld)
	}
	if g := e.GrowthRate("new"); math.Abs(g-51) > 1e-9 {
		t.Fatalf("growth rate %v, want 51", g)
	}
}

func BenchmarkSAXUpdate(b *testing.B) {
	s, _ := NewSAX(6, 8, 256)
	for i := 0; i < b.N; i++ {
		s.Update(float64(i % 100))
	}
}

func BenchmarkCEPSubmit(b *testing.B) {
	c, _ := NewCEP(64)
	c.AddRule(Rule{Name: "r", Condition: func(e Event) bool { return e.Value > 0.9 }})
	c.AddSequence(SequenceRule{
		Name:   "s",
		First:  func(e Event) bool { return e.Value > 0.8 },
		Then:   func(e Event) bool { return e.Value < 0.1 },
		Window: 100,
	})
	for i := 0; i < b.N; i++ {
		c.Submit(Event{Type: "x", Value: float64(i%100) / 100})
	}
}
