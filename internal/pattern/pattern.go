// Package pattern implements temporal-pattern analysis over streams — the
// tutorial's Table 1 "Temporal Pattern Analysis" row (traffic analysis)
// plus the rule-engine model Section 3's footnote describes:
//
//   - SAX symbolization (piecewise-aggregate approximation + Gaussian
//     breakpoints) turning real-valued series into symbol strings,
//   - shape-based pattern detection over the symbol stream (the SpADe-style
//     "find this shape" problem),
//   - a small CEP rule engine: condition/action rules over event streams
//     with "followed-by within window" sequencing.
package pattern

import (
	"repro/internal/core"
	"repro/internal/window"
)

// saxBreakpoints holds the standard Gaussian equiprobable breakpoints for
// alphabet sizes 2..8 (SAX, Lin–Keogh).
var saxBreakpoints = map[int][]float64{
	2: {0},
	3: {-0.43, 0.43},
	4: {-0.67, 0, 0.67},
	5: {-0.84, -0.25, 0.25, 0.84},
	6: {-0.97, -0.43, 0, 0.43, 0.97},
	7: {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
	8: {-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15},
}

// SAX converts a real-valued stream into a symbol stream: values are
// z-normalized against a sliding window, averaged over frames of `frame`
// samples (PAA), and quantized into an alphabet of the given size.
type SAX struct {
	alphabet int
	frame    int
	stats    *window.SlidingStats
	acc      float64
	inFrame  int
	breaks   []float64
}

// NewSAX returns a symbolizer with the given alphabet size (2..8), PAA
// frame length, and normalization window.
func NewSAX(alphabet, frame, normWindow int) (*SAX, error) {
	breaks, ok := saxBreakpoints[alphabet]
	if !ok {
		return nil, core.Errf("SAX", "alphabet", "%d not in [2,8]", alphabet)
	}
	if frame <= 0 {
		return nil, core.Errf("SAX", "frame", "%d must be positive", frame)
	}
	stats, err := window.NewSlidingStats(normWindow)
	if err != nil {
		return nil, err
	}
	return &SAX{alphabet: alphabet, frame: frame, stats: stats, breaks: breaks}, nil
}

// Update feeds one sample; when a PAA frame completes it returns the
// symbol ('a' + index) and true.
func (s *SAX) Update(v float64) (byte, bool) {
	s.stats.Update(v)
	mean := s.stats.Mean()
	sd := s.stats.StdDev()
	z := 0.0
	if sd > 1e-12 {
		z = (v - mean) / sd
	}
	s.acc += z
	s.inFrame++
	if s.inFrame < s.frame {
		return 0, false
	}
	paa := s.acc / float64(s.frame)
	s.acc = 0
	s.inFrame = 0
	sym := 0
	for _, b := range s.breaks {
		if paa > b {
			sym++
		}
	}
	return byte('a' + sym), true
}

// ShapeDetector matches a symbol pattern (with '.' wildcards) against the
// SAX symbol stream, reporting completions — streaming shape-based pattern
// detection in the SpADe spirit.
type ShapeDetector struct {
	pattern []byte
	buf     []byte
	hits    uint64
	n       uint64
}

// NewShapeDetector returns a detector for the given symbol pattern;
// '.' matches any symbol.
func NewShapeDetector(pattern string) (*ShapeDetector, error) {
	if pattern == "" {
		return nil, core.Errf("ShapeDetector", "pattern", "must be non-empty")
	}
	return &ShapeDetector{pattern: []byte(pattern)}, nil
}

// Update feeds one symbol and reports whether the pattern just completed.
func (d *ShapeDetector) Update(sym byte) bool {
	d.n++
	d.buf = append(d.buf, sym)
	if len(d.buf) > len(d.pattern) {
		d.buf = d.buf[1:]
	}
	if len(d.buf) < len(d.pattern) {
		return false
	}
	for i, p := range d.pattern {
		if p != '.' && d.buf[i] != p {
			return false
		}
	}
	d.hits++
	return true
}

// Hits returns the number of completed matches.
func (d *ShapeDetector) Hits() uint64 { return d.hits }

// Event is one CEP input: a type tag plus a numeric payload.
type Event struct {
	Type  string
	Value float64
	Tick  uint64
}

// Rule is a condition/action pair: when Condition fires for an event, the
// Action runs. This is exactly the rule-engine model the tutorial's
// Section 3 footnote describes ("if-then" over streaming data).
type Rule struct {
	Name      string
	Condition func(Event) bool
	Action    func(Event)
}

// SequenceRule fires when an event matching First is followed by an event
// matching Then within Window ticks.
type SequenceRule struct {
	Name   string
	First  func(Event) bool
	Then   func(Event) bool
	Window uint64
	Action func(first, then Event)
}

// CEP is a small complex-event-processing engine: simple rules fire
// immediately; sequence rules track pending first-events and fire on the
// matching second event within the window.
type CEP struct {
	rules    []Rule
	seqs     []SequenceRule
	pending  [][]Event // per sequence rule, pending first events
	now      uint64
	firings  map[string]uint64
	maxQueue int
}

// NewCEP returns an empty engine. maxQueue bounds pending first-events per
// sequence rule (oldest dropped first), protecting memory against
// pathological streams.
func NewCEP(maxQueue int) (*CEP, error) {
	if maxQueue <= 0 {
		return nil, core.Errf("CEP", "maxQueue", "%d must be positive", maxQueue)
	}
	return &CEP{firings: make(map[string]uint64), maxQueue: maxQueue}, nil
}

// AddRule registers a simple condition/action rule.
func (c *CEP) AddRule(r Rule) { c.rules = append(c.rules, r) }

// AddSequence registers a followed-by rule.
func (c *CEP) AddSequence(r SequenceRule) {
	c.seqs = append(c.seqs, r)
	c.pending = append(c.pending, nil)
}

// Submit feeds one event into the engine.
func (c *CEP) Submit(e Event) {
	c.now++
	e.Tick = c.now
	for _, r := range c.rules {
		if r.Condition(e) {
			c.firings[r.Name]++
			if r.Action != nil {
				r.Action(e)
			}
		}
	}
	for i := range c.seqs {
		sr := &c.seqs[i]
		// Expire stale pending firsts.
		pend := c.pending[i][:0]
		for _, f := range c.pending[i] {
			if f.Tick+sr.Window >= c.now {
				pend = append(pend, f)
			}
		}
		c.pending[i] = pend
		if sr.Then(e) && len(c.pending[i]) > 0 {
			first := c.pending[i][0]
			c.pending[i] = c.pending[i][1:]
			c.firings[sr.Name]++
			if sr.Action != nil {
				sr.Action(first, e)
			}
		}
		if sr.First(e) {
			c.pending[i] = append(c.pending[i], e)
			if len(c.pending[i]) > c.maxQueue {
				c.pending[i] = c.pending[i][1:]
			}
		}
	}
}

// Firings returns how many times the named rule has fired.
func (c *CEP) Firings(name string) uint64 { return c.firings[name] }

// EmergingScorer tracks per-key frequency in a current window against a
// reference window and scores keys by their growth ratio — the "mining
// emerging patterns" problem of the survey's Yu et al./Alavi–Hashemi
// citations, in its streaming form (what is suddenly trending?).
type EmergingScorer struct {
	windowSize int
	ref        map[string]float64
	cur        map[string]uint64
	seen       int
}

// NewEmergingScorer returns a scorer that flips windows every windowSize
// events.
func NewEmergingScorer(windowSize int) (*EmergingScorer, error) {
	if windowSize <= 0 {
		return nil, core.Errf("EmergingScorer", "windowSize", "%d must be positive", windowSize)
	}
	return &EmergingScorer{
		windowSize: windowSize,
		ref:        make(map[string]float64),
		cur:        make(map[string]uint64),
	}, nil
}

// Update feeds one keyed event.
func (e *EmergingScorer) Update(key string) {
	e.cur[key]++
	e.seen++
	if e.seen >= e.windowSize {
		e.flip()
	}
}

func (e *EmergingScorer) flip() {
	nref := make(map[string]float64, len(e.cur))
	for k, v := range e.cur {
		nref[k] = float64(v)
	}
	e.ref = nref
	e.cur = make(map[string]uint64)
	e.seen = 0
}

// GrowthRate returns the emerging-pattern score of key: current-window
// frequency over reference-window frequency (Laplace-smoothed so unseen
// reference keys still score finitely high).
func (e *EmergingScorer) GrowthRate(key string) float64 {
	curF := float64(e.cur[key])
	refF := e.ref[key]
	return (curF + 1) / (refF + 1)
}
